// Package msg defines the application payloads exchanged over the V2V
// channel. The platooning application broadcasts cooperative awareness
// beacons (CAM/BSM style) carrying the kinematic state that CACC
// controllers consume — the data whose delayed or blocked delivery the
// ComFASE attacks exploit.
package msg

import "comfase/internal/sim/des"

// Beacon is a periodic cooperative-awareness message. Field layout
// follows Plexe's platooning beacon: identity plus kinematic state.
type Beacon struct {
	// Source is the sending vehicle's ID.
	Source string `json:"source"`
	// Seq is the per-sender sequence number, starting at 1.
	Seq uint64 `json:"seq"`
	// SentAt is the application-level send time stamp.
	SentAt des.Time `json:"sentAtNs"`
	// PlatoonID names the platoon the sender belongs to.
	PlatoonID string `json:"platoonId"`
	// PlatoonIndex is the sender's position in the platoon (0 = leader).
	PlatoonIndex int `json:"platoonIndex"`
	// Pos is the sender's front-bumper lane position in metres.
	Pos float64 `json:"posM"`
	// Lane is the sender's lane index.
	Lane int `json:"lane"`
	// Speed is the sender's speed in m/s.
	Speed float64 `json:"speedMps"`
	// Accel is the sender's realised acceleration in m/s^2.
	Accel float64 `json:"accelMps2"`
	// Length is the sender's vehicle length in metres, needed by
	// followers to compute bumper-to-bumper spacing.
	Length float64 `json:"lengthM"`
}

// Clone returns a copy of the beacon. Attack models that falsify fields
// must clone first so the sender's history is not rewritten.
func (b Beacon) Clone() Beacon { return b }
