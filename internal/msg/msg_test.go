package msg

import (
	"encoding/json"
	"testing"

	"comfase/internal/sim/des"
)

func TestBeaconCloneIsIndependent(t *testing.T) {
	b := Beacon{Source: "vehicle.2", Seq: 7, Speed: 27.78, Accel: 1.2}
	c := b.Clone()
	c.Accel = -9
	c.Seq = 99
	if b.Accel != 1.2 || b.Seq != 7 {
		t.Errorf("clone mutation leaked into original: %+v", b)
	}
}

func TestBeaconJSONRoundTrip(t *testing.T) {
	b := Beacon{
		Source:       "vehicle.1",
		Seq:          42,
		SentAt:       17200 * des.Millisecond,
		PlatoonID:    "platoon.0",
		PlatoonIndex: 0,
		Pos:          123.45,
		Lane:         2,
		Speed:        27.78,
		Accel:        -1.53,
		Length:       4,
	}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var got Beacon
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got != b {
		t.Errorf("round trip mismatch: %+v vs %+v", got, b)
	}
	// Field tags keep the wire contract stable.
	for _, key := range []string{`"source"`, `"seq"`, `"sentAtNs"`, `"posM"`, `"speedMps"`, `"accelMps2"`} {
		if !json.Valid(data) || !contains(string(data), key) {
			t.Errorf("wire form missing %s: %s", key, data)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
