// Package invariant provides the cheap runtime sanity checks the
// simulation layers run while an experiment executes: finiteness of the
// numeric state (no NaN/Inf), longitudinal position monotonicity
// (vehicles never reverse), non-negative speed, and collision-handling
// consistency (overlapping vehicles must have been halted).
//
// The checks exist because a fault-injection engine is itself exposed to
// the corruption it studies: a buggy attack model, controller or
// integrator can poison vehicle state with NaN and silently produce a
// bogus — but perfectly well-formed — result row. With checks enabled
// (core.EngineConfig.Invariants), corruption surfaces as a classified
// ErrInvariant experiment failure instead.
//
// Every violation error wraps ErrInvariant, so callers classify with
// errors.Is(err, invariant.ErrInvariant) without knowing the concrete
// check that fired.
package invariant

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvariant is the sentinel all violation errors wrap.
var ErrInvariant = errors.New("invariant violated")

// Violation describes one failed runtime check. It is an error and
// unwraps to ErrInvariant.
type Violation struct {
	// Check names the invariant that failed ("finite", "monotonic-pos",
	// "negative-speed", "unhandled-overlap").
	Check string
	// Subject identifies the checked entity (a vehicle ID, a field name).
	Subject string
	// Detail is the human-readable specifics (observed values).
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("invariant %s violated for %s: %s", v.Check, v.Subject, v.Detail)
}

// Unwrap makes errors.Is(v, ErrInvariant) true.
func (v *Violation) Unwrap() error { return ErrInvariant }

// Finite reports whether x is neither NaN nor ±Inf.
func Finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// CheckFinite returns a Violation unless x is finite. subject names the
// entity, field the checked quantity.
func CheckFinite(subject, field string, x float64) error {
	if Finite(x) {
		return nil
	}
	return &Violation{
		Check:   "finite",
		Subject: subject,
		Detail:  fmt.Sprintf("%s = %v", field, x),
	}
}

// CheckMonotonicPos returns a Violation when cur < prev: longitudinal
// positions may stall but never decrease (vehicles do not reverse).
func CheckMonotonicPos(subject string, prev, cur float64) error {
	if cur >= prev {
		return nil
	}
	return &Violation{
		Check:   "monotonic-pos",
		Subject: subject,
		Detail:  fmt.Sprintf("position moved backwards %v -> %v", prev, cur),
	}
}

// CheckNonNegativeSpeed returns a Violation for a negative speed (the
// integrator clamps speed at zero; a negative value means corruption).
func CheckNonNegativeSpeed(subject string, speed float64) error {
	if speed >= 0 {
		return nil
	}
	return &Violation{
		Check:   "negative-speed",
		Subject: subject,
		Detail:  fmt.Sprintf("speed = %v", speed),
	}
}

// CheckHandledOverlap returns a Violation when two vehicles overlap
// (negative gap) but were not both halted by collision handling — the
// "vehicles drove through each other" corruption class.
func CheckHandledOverlap(rear, front string, gap float64, bothHalted bool) error {
	if gap >= 0 || bothHalted {
		return nil
	}
	return &Violation{
		Check:   "unhandled-overlap",
		Subject: rear + "|" + front,
		Detail:  fmt.Sprintf("gap = %v m with vehicles still moving", gap),
	}
}
