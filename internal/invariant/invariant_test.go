package invariant

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestFinite(t *testing.T) {
	for _, x := range []float64{0, -1, 1e300, math.SmallestNonzeroFloat64} {
		if !Finite(x) {
			t.Errorf("Finite(%v) = false", x)
		}
	}
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if Finite(x) {
			t.Errorf("Finite(%v) = true", x)
		}
	}
}

func TestChecksWrapSentinel(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"finite", CheckFinite("vehicle.2", "pos", math.NaN())},
		{"monotonic", CheckMonotonicPos("vehicle.2", 10, 9)},
		{"speed", CheckNonNegativeSpeed("vehicle.2", -0.5)},
		{"overlap", CheckHandledOverlap("vehicle.3", "vehicle.2", -1.5, false)},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected a violation", c.name)
			continue
		}
		if !errors.Is(c.err, ErrInvariant) {
			t.Errorf("%s: %v does not wrap ErrInvariant", c.name, c.err)
		}
		var v *Violation
		if !errors.As(c.err, &v) {
			t.Errorf("%s: %v is not a *Violation", c.name, c.err)
		}
		if !strings.Contains(c.err.Error(), "vehicle.2") {
			t.Errorf("%s: error %q does not name the subject", c.name, c.err)
		}
	}
}

func TestChecksPassOnHealthyState(t *testing.T) {
	if err := CheckFinite("v", "pos", 123.4); err != nil {
		t.Errorf("CheckFinite: %v", err)
	}
	if err := CheckMonotonicPos("v", 10, 10); err != nil {
		t.Errorf("CheckMonotonicPos equal: %v", err)
	}
	if err := CheckMonotonicPos("v", 10, 10.1); err != nil {
		t.Errorf("CheckMonotonicPos forward: %v", err)
	}
	if err := CheckNonNegativeSpeed("v", 0); err != nil {
		t.Errorf("CheckNonNegativeSpeed: %v", err)
	}
	if err := CheckHandledOverlap("a", "b", 0.5, false); err != nil {
		t.Errorf("CheckHandledOverlap open gap: %v", err)
	}
	if err := CheckHandledOverlap("a", "b", -0.5, true); err != nil {
		t.Errorf("CheckHandledOverlap halted wreck: %v", err)
	}
}
