// Package registry is the declarative front door to ComFASE's scenario
// and attack space: named, parameterised builders for traffic scenarios
// (paper platoon, arbitrary platoon sizes and controller mixes, AEB,
// teleoperation) alongside the attack/fault families and campaign
// presets registered in internal/core. Campaign matrices (Matrix) cross
// scenarios with attacks into one deterministic experiment grid.
//
// Registration happens at init time and panics on duplicates; lookups
// return errors with nearest-match suggestions. `comfase list` renders
// the registries with their parameter schemas.
package registry

import (
	"fmt"

	"comfase/internal/core"
	"comfase/internal/registry/param"
	"comfase/internal/scenario"
)

// ScenarioDef is a fully resolved scenario cell: the Step-1 objects a
// campaign engine needs.
type ScenarioDef struct {
	// Traffic is the setScenario configuration.
	Traffic scenario.TrafficScenario
	// Comm is the setCommunication configuration.
	Comm scenario.CommModel
	// Controllers builds the follower controllers (nil = CACC defaults).
	Controllers scenario.ControllerFactory
}

// ScenarioEntry is one registered scenario family.
type ScenarioEntry struct {
	// Name is the registry key.
	Name string
	// Desc is a one-line description for `comfase list`.
	Desc string
	// Schema is the family's parameter schema (nil = none).
	Schema param.Schema
	// Build resolves validated parameters into a scenario definition.
	Build func(p param.Params) (ScenarioDef, error)
}

var scenarios = param.NewSet[ScenarioEntry]("scenario")

// RegisterScenario adds a scenario family; it panics on duplicates.
func RegisterScenario(e ScenarioEntry) {
	if e.Build == nil {
		panic(fmt.Sprintf("registry: scenario %q has no builder", e.Name))
	}
	scenarios.Register(e.Name, e)
}

// LookupScenario returns the named scenario family, with nearest-match
// suggestions on unknown names.
func LookupScenario(name string) (ScenarioEntry, error) {
	e, err := scenarios.Lookup(name)
	if err != nil {
		return ScenarioEntry{}, fmt.Errorf("registry: %w", err)
	}
	return e, nil
}

// ScenarioNames returns all registered scenario names, sorted.
func ScenarioNames() []string { return scenarios.Names() }

// BuildScenario resolves a named scenario with raw parameters: the
// entry's schema is applied (defaults, bounds, unknown-key rejection)
// before the builder runs.
func BuildScenario(name string, p param.Params) (ScenarioDef, error) {
	e, err := LookupScenario(name)
	if err != nil {
		return ScenarioDef{}, err
	}
	applied, err := e.Schema.Apply(p)
	if err != nil {
		return ScenarioDef{}, fmt.Errorf("registry: scenario %q: %w", name, err)
	}
	def, err := e.Build(applied)
	if err != nil {
		return ScenarioDef{}, err
	}
	if err := def.Traffic.Validate(); err != nil {
		return ScenarioDef{}, err
	}
	if err := def.Comm.Validate(); err != nil {
		return ScenarioDef{}, err
	}
	return def, nil
}

// AttackEntry aliases the attack families registered in internal/core;
// the registry package is their discovery surface.
type AttackEntry = core.AttackEntry

// LookupAttack resolves a registered attack family by name.
func LookupAttack(name string) (AttackEntry, error) { return core.LookupAttack(name) }

// AttackNames returns all registered attack names, sorted.
func AttackNames() []string { return core.AttackNames() }

// CampaignEntry aliases the campaign presets registered in
// internal/core (the paper's Table II grids).
type CampaignEntry = core.CampaignEntry

// LookupCampaign resolves a registered campaign preset by name.
func LookupCampaign(name string) (CampaignEntry, error) { return core.LookupCampaign(name) }

// CampaignNames returns all registered campaign-preset names, sorted.
func CampaignNames() []string { return core.CampaignNames() }
