// Package param implements the typed parameter machinery shared by the
// ComFASE registries (internal/registry, core's attack registry): named
// parameter schemas with defaults, bounds and enum validation, plus a
// generic name → entry set with duplicate-registration panics and
// nearest-match suggestions in unknown-name errors.
//
// The package is dependency-free by design: core registers attack
// entries against it while the registry facade registers scenarios, so
// it must sit below both in the import graph.
package param

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind is a parameter's value type.
type Kind int

// The supported parameter kinds. JSON configs decode numbers as
// float64, so Int accepts integral float64 values too.
const (
	Float Kind = iota + 1
	Int
	Bool
	String
	Enum
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Float:
		return "float"
	case Int:
		return "int"
	case Bool:
		return "bool"
	case String:
		return "string"
	case Enum:
		return "enum"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes one parameter of a registry entry.
type Spec struct {
	// Name is the parameter's JSON key.
	Name string
	// Kind is the value type.
	Kind Kind
	// Desc is a one-line human description for `comfase list`.
	Desc string
	// Default is the value applied when the parameter is absent. It must
	// be valid under Kind and the bounds.
	Default any
	// Min/Max bound Float and Int parameters inclusively (nil = open).
	Min, Max *float64
	// Enum lists the accepted values of an Enum parameter.
	Enum []string
}

// Bound is a convenience constructor for Min/Max pointers.
func Bound(v float64) *float64 { return &v }

// Doc renders a compact one-line schema entry ("name kind default=x
// [min,max] desc") for listings.
func (s Spec) Doc() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", s.Name, s.Kind)
	if s.Kind == Enum {
		fmt.Fprintf(&b, "(%s)", strings.Join(s.Enum, "|"))
	}
	fmt.Fprintf(&b, " default=%v", s.Default)
	if s.Min != nil || s.Max != nil {
		lo, hi := "-inf", "+inf"
		if s.Min != nil {
			lo = fmt.Sprintf("%g", *s.Min)
		}
		if s.Max != nil {
			hi = fmt.Sprintf("%g", *s.Max)
		}
		fmt.Fprintf(&b, " [%s,%s]", lo, hi)
	}
	if s.Desc != "" {
		fmt.Fprintf(&b, "  %s", s.Desc)
	}
	return b.String()
}

// Params is a raw name → value map, typically decoded from JSON.
type Params map[string]any

// Float returns a numeric parameter. Apply guarantees presence and
// type, so the zero value only surfaces on misuse.
func (p Params) Float(name string) float64 {
	switch v := p[name].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	}
	return 0
}

// Int returns an integer parameter.
func (p Params) Int(name string) int {
	switch v := p[name].(type) {
	case int:
		return v
	case float64:
		return int(v)
	}
	return 0
}

// Bool returns a boolean parameter.
func (p Params) Bool(name string) bool {
	v, _ := p[name].(bool)
	return v
}

// Str returns a string or enum parameter.
func (p Params) Str(name string) string {
	v, _ := p[name].(string)
	return v
}

// Schema is an entry's full parameter schema. Order is the listing
// order; names must be unique.
type Schema []Spec

// Apply validates raw parameters against the schema and returns a new
// map with defaults filled in: unknown keys are rejected, values are
// coerced to the declared kind, and bounds/enums are enforced. A nil
// input is treated as empty.
func (s Schema) Apply(p Params) (Params, error) {
	out := make(Params, len(s))
	for k := range p {
		if s.find(k) == nil {
			known := make([]string, 0, len(s))
			for _, sp := range s {
				known = append(known, sp.Name)
			}
			return nil, fmt.Errorf("param: unknown parameter %q%s", k, suggestClause(k, known))
		}
	}
	for _, sp := range s {
		raw, ok := p[sp.Name]
		if !ok {
			raw = sp.Default
		}
		v, err := sp.check(raw)
		if err != nil {
			return nil, err
		}
		out[sp.Name] = v
	}
	return out, nil
}

func (s Schema) find(name string) *Spec {
	for i := range s {
		if s[i].Name == name {
			return &s[i]
		}
	}
	return nil
}

// check coerces and validates one value against the spec.
func (sp Spec) check(raw any) (any, error) {
	switch sp.Kind {
	case Float:
		f, ok := toFloat(raw)
		if !ok {
			return nil, fmt.Errorf("param: %s: want float, got %T", sp.Name, raw)
		}
		if err := sp.checkBounds(f); err != nil {
			return nil, err
		}
		return f, nil
	case Int:
		f, ok := toFloat(raw)
		if !ok || f != math.Trunc(f) {
			return nil, fmt.Errorf("param: %s: want integer, got %v", sp.Name, raw)
		}
		if err := sp.checkBounds(f); err != nil {
			return nil, err
		}
		return int(f), nil
	case Bool:
		b, ok := raw.(bool)
		if !ok {
			return nil, fmt.Errorf("param: %s: want bool, got %T", sp.Name, raw)
		}
		return b, nil
	case String:
		str, ok := raw.(string)
		if !ok {
			return nil, fmt.Errorf("param: %s: want string, got %T", sp.Name, raw)
		}
		return str, nil
	case Enum:
		str, ok := raw.(string)
		if !ok {
			return nil, fmt.Errorf("param: %s: want one of %v, got %T", sp.Name, sp.Enum, raw)
		}
		for _, e := range sp.Enum {
			if str == e {
				return str, nil
			}
		}
		return nil, fmt.Errorf("param: %s: %q is not one of %s%s",
			sp.Name, str, strings.Join(sp.Enum, ", "), suggestClause(str, sp.Enum))
	default:
		return nil, fmt.Errorf("param: %s: invalid kind %v", sp.Name, sp.Kind)
	}
}

func (sp Spec) checkBounds(f float64) error {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return fmt.Errorf("param: %s: value %v is not finite", sp.Name, f)
	}
	if sp.Min != nil && f < *sp.Min {
		return fmt.Errorf("param: %s: %v below minimum %v", sp.Name, f, *sp.Min)
	}
	if sp.Max != nil && f > *sp.Max {
		return fmt.Errorf("param: %s: %v above maximum %v", sp.Name, f, *sp.Max)
	}
	return nil
}

func toFloat(raw any) (float64, bool) {
	switch v := raw.(type) {
	case float64:
		return v, true
	case int:
		return float64(v), true
	case int64:
		return float64(v), true
	}
	return 0, false
}

// Set is a name → entry registry. Registration is expected at package
// init time; lookups are read-only afterwards, so the type carries no
// lock. The zero value is not usable — construct with NewSet.
type Set[T any] struct {
	kind    string
	entries map[string]T
}

// NewSet returns an empty registry whose error messages call the
// entries "<kind>" (e.g. "attack", "scenario").
func NewSet[T any](kind string) *Set[T] {
	return &Set[T]{kind: kind, entries: make(map[string]T)}
}

// Register adds an entry. It panics on an empty name or a duplicate:
// registries are assembled in init functions, where a clash is a
// programming error that must not be silently resolved by load order.
func (s *Set[T]) Register(name string, entry T) {
	if name == "" {
		panic(fmt.Sprintf("param: empty %s name", s.kind))
	}
	if _, dup := s.entries[name]; dup {
		panic(fmt.Sprintf("param: duplicate %s %q", s.kind, name))
	}
	s.entries[name] = entry
}

// Lookup returns the named entry. Unknown names produce an error that
// lists the accepted names and, when one is close, a nearest-match
// suggestion.
func (s *Set[T]) Lookup(name string) (T, error) {
	if e, ok := s.entries[name]; ok {
		return e, nil
	}
	var zero T
	return zero, fmt.Errorf("param: unknown %s %q%s; known: %s",
		s.kind, name, suggestClause(name, s.Names()), strings.Join(s.Names(), ", "))
}

// Has reports whether name is registered.
func (s *Set[T]) Has(name string) bool {
	_, ok := s.entries[name]
	return ok
}

// Names returns all registered names, sorted.
func (s *Set[T]) Names() []string {
	out := make([]string, 0, len(s.entries))
	for name := range s.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Suggest returns the candidate closest to name by edit distance, or ""
// when nothing is close enough to be a plausible typo (distance must be
// at most half the name's length).
func Suggest(name string, candidates []string) string {
	best, bestDist := "", len(name)/2+1
	for _, c := range candidates {
		if d := editDistance(name, c); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// suggestClause renders ` (did you mean "x"?)` or "".
func suggestClause(name string, candidates []string) string {
	if s := Suggest(name, candidates); s != "" {
		return fmt.Sprintf(" (did you mean %q?)", s)
	}
	return ""
}

// editDistance is the Levenshtein distance between two short names.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
