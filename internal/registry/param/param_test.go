package param

import (
	"strings"
	"testing"
)

func testSchema() Schema {
	return Schema{
		{Name: "nrVehicles", Kind: Int, Default: 4, Min: Bound(2), Max: Bound(32)},
		{Name: "headwayS", Kind: Float, Default: 0.5, Min: Bound(0)},
		{Name: "aeb", Kind: Bool, Default: false},
		{Name: "controllers", Kind: String, Default: "cacc"},
		{Name: "maneuver", Kind: Enum, Default: "sinusoidal", Enum: []string{"sinusoidal", "braking", "constant"}},
	}
}

func TestSchemaApplyDefaults(t *testing.T) {
	p, err := testSchema().Apply(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Int("nrVehicles"); got != 4 {
		t.Errorf("nrVehicles default = %d, want 4", got)
	}
	if got := p.Float("headwayS"); got != 0.5 {
		t.Errorf("headwayS default = %g, want 0.5", got)
	}
	if p.Bool("aeb") {
		t.Error("aeb default should be false")
	}
	if got := p.Str("maneuver"); got != "sinusoidal" {
		t.Errorf("maneuver default = %q", got)
	}
}

func TestSchemaApplyCoercion(t *testing.T) {
	// JSON decodes every number as float64; integral floats must pass
	// Int parameters, fractional ones must not.
	p, err := testSchema().Apply(Params{"nrVehicles": float64(8)})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Int("nrVehicles"); got != 8 {
		t.Errorf("nrVehicles = %d, want 8", got)
	}
	if _, err := testSchema().Apply(Params{"nrVehicles": 2.5}); err == nil {
		t.Error("fractional value accepted for int parameter")
	}
}

func TestSchemaApplyBounds(t *testing.T) {
	for _, p := range []Params{
		{"nrVehicles": 1},
		{"nrVehicles": 33},
		{"headwayS": -0.1},
	} {
		if _, err := testSchema().Apply(p); err == nil {
			t.Errorf("out-of-bounds params %v accepted", p)
		}
	}
}

func TestSchemaApplyUnknownKey(t *testing.T) {
	_, err := testSchema().Apply(Params{"nrVehicle": 4})
	if err == nil {
		t.Fatal("unknown key accepted")
	}
	if !strings.Contains(err.Error(), `"nrVehicles"`) {
		t.Errorf("error %q lacks nearest-match suggestion", err)
	}
}

func TestSchemaApplyEnum(t *testing.T) {
	_, err := testSchema().Apply(Params{"maneuver": "brakin"})
	if err == nil {
		t.Fatal("bad enum value accepted")
	}
	if !strings.Contains(err.Error(), `"braking"`) {
		t.Errorf("error %q lacks enum suggestion", err)
	}
}

func TestSetDuplicateRegistrationPanics(t *testing.T) {
	s := NewSet[int]("thing")
	s.Register("a", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	s.Register("a", 2)
}

func TestSetEmptyNamePanics(t *testing.T) {
	s := NewSet[int]("thing")
	defer func() {
		if recover() == nil {
			t.Fatal("empty name registration did not panic")
		}
	}()
	s.Register("", 1)
}

func TestSetLookupSuggestion(t *testing.T) {
	s := NewSet[int]("attack")
	s.Register("delay", 1)
	s.Register("dos", 2)
	s.Register("packet-loss", 3)
	if _, err := s.Lookup("delay"); err != nil {
		t.Fatalf("known name: %v", err)
	}
	_, err := s.Lookup("dely")
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	for _, want := range []string{`"dely"`, `"delay"`, "packet-loss"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q lacks %s", err, want)
		}
	}
	// Nothing close: no suggestion clause, but the name list stays.
	_, err = s.Lookup("zzzzzzzz")
	if err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Errorf("far-off name got a suggestion: %v", err)
	}
}

func TestSetNamesSorted(t *testing.T) {
	s := NewSet[int]("x")
	s.Register("b", 1)
	s.Register("a", 2)
	s.Register("c", 3)
	got := s.Names()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("Names() = %v, want sorted [a b c]", got)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"delay", "dely", 1},
		{"dos", "delay", 4},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
