package registry

import (
	"testing"

	"comfase/internal/classify"
	"comfase/internal/core"
	"comfase/internal/registry/param"
	"comfase/internal/sim/des"
)

func teleopEngine(t *testing.T, watchdogS float64) *core.Engine {
	t.Helper()
	def, err := BuildScenario("teleop", param.Params{"watchdogS": watchdogS})
	if err != nil {
		t.Fatalf("BuildScenario(teleop): %v", err)
	}
	eng, err := core.NewEngine(core.EngineConfig{
		Scenario:    def.Traffic,
		Comm:        def.Comm,
		Controllers: def.Controllers,
		Seed:        1,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng
}

// TestTeleopScenarioSafety is the teleop scenario's acceptance test:
// the attack-free golden run is collision-free, a DoS on the command
// link during the braking phase is severe, and the watchdog bounds the
// follower's reaction at the controlled safe-stop deceleration where
// the unprotected controller ends up panic-braking much harder.
func TestTeleopScenarioSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 60 s simulations in -short mode")
	}
	dos := core.ExperimentSpec{
		Attack:   "dos",
		Targets:  []string{"vehicle.2"},
		Value:    60,
		Start:    25 * des.Second,
		Duration: 60 * des.Second,
	}

	protected := teleopEngine(t, 0.5)
	_, golden, err := protected.GoldenRun()
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	if golden.MaxDecel >= 6 {
		t.Errorf("golden max decel = %.2f, want < 6 (no safe stop without an attack)", golden.MaxDecel)
	}
	resProtected, err := protected.RunExperiment(dos)
	if err != nil {
		t.Fatalf("protected DoS run: %v", err)
	}
	if resProtected.Outcome != classify.Severe {
		t.Errorf("protected DoS outcome = %v, want severe (hard stop)", resProtected.Outcome)
	}
	if len(resProtected.Collisions) != 0 {
		t.Errorf("protected DoS collided: %v", resProtected.Collisions)
	}
	// The watchdog degrades to its configured controlled stop.
	if resProtected.MaxDecel > 6.01 {
		t.Errorf("protected DoS max decel = %.2f, want <= safe-stop 6", resProtected.MaxDecel)
	}

	unprotected := teleopEngine(t, 0)
	resUnprotected, err := unprotected.RunExperiment(dos)
	if err != nil {
		t.Fatalf("unprotected DoS run: %v", err)
	}
	if resUnprotected.MaxDecel <= resProtected.MaxDecel {
		t.Errorf("unprotected DoS max decel = %.2f, want > protected %.2f (late panic braking)",
			resUnprotected.MaxDecel, resProtected.MaxDecel)
	}
}
