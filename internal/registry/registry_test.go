package registry

import (
	"reflect"
	"strings"
	"testing"

	"comfase/internal/core"
	"comfase/internal/registry/param"
	"comfase/internal/sim/des"
)

func TestLookupScenarioSuggestions(t *testing.T) {
	if _, err := LookupScenario("platon"); err == nil ||
		!strings.Contains(err.Error(), `did you mean "platoon"`) {
		t.Errorf("LookupScenario(platon) = %v, want platoon suggestion", err)
	}
	if _, err := LookupScenario("paper-platoon"); err != nil {
		t.Errorf("LookupScenario(paper-platoon): %v", err)
	}
}

func TestScenarioNamesSorted(t *testing.T) {
	names := ScenarioNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("ScenarioNames not strictly sorted: %v", names)
		}
	}
	for _, want := range []string{"paper-platoon", "platoon", "teleop"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Errorf("scenario %q not registered (have %v)", want, names)
		}
	}
}

func TestBuildScenarioBounds(t *testing.T) {
	cases := []struct {
		name   string
		params param.Params
		want   string
	}{
		{"platoon", param.Params{"nrVehicles": 1}, "nrVehicles"},
		{"platoon", param.Params{"nrVehicles": 33}, "nrVehicles"},
		{"platoon", param.Params{"totalSimTimeS": 0.5}, "totalSimTimeS"},
		{"platoon", param.Params{"maneuver": "brakin"}, `did you mean "braking"`},
		{"platoon", param.Params{"nrVehicle": 4}, `did you mean "nrVehicles"`},
		{"platoon", param.Params{"controllers": "cac"}, `did you mean "cacc"`},
		{"teleop", param.Params{"watchdogS": -1}, "watchdogS"},
	}
	for _, c := range cases {
		if _, err := BuildScenario(c.name, c.params); err == nil ||
			!strings.Contains(err.Error(), c.want) {
			t.Errorf("BuildScenario(%s, %v) = %v, want error mentioning %q",
				c.name, c.params, err, c.want)
		}
	}
}

func TestBuildScenarioDefaults(t *testing.T) {
	def, err := BuildScenario("platoon", nil)
	if err != nil {
		t.Fatalf("BuildScenario(platoon, nil): %v", err)
	}
	if def.Traffic.NrVehicles != 4 {
		t.Errorf("default NrVehicles = %d, want 4", def.Traffic.NrVehicles)
	}
	if def.Traffic.TotalSimTime != 60*des.Second {
		t.Errorf("default TotalSimTime = %v, want 60s", def.Traffic.TotalSimTime)
	}
	if def.Controllers == nil || def.Controllers(1) == nil {
		t.Fatal("default controller factory is nil")
	}
	if got := def.Controllers(1).Name(); got != "CACC" {
		t.Errorf("default follower controller = %q, want CACC", got)
	}
}

func TestControllerMixRoundRobin(t *testing.T) {
	factory, err := ControllerMix("cacc, acc ,ploeg")
	if err != nil {
		t.Fatalf("ControllerMix: %v", err)
	}
	want := []string{"CACC", "ACC", "PLOEG", "CACC", "ACC"}
	for i, name := range want {
		if got := factory(i + 1).Name(); got != name {
			t.Errorf("follower %d controller = %q, want %q", i+1, got, name)
		}
	}
	if _, err := ControllerMix("cacc,plog"); err == nil ||
		!strings.Contains(err.Error(), `did you mean "ploeg"`) {
		t.Errorf("ControllerMix(plog) = %v, want ploeg suggestion", err)
	}
}

func TestDuplicateScenarioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering paper-platoon did not panic")
		}
	}()
	RegisterScenario(ScenarioEntry{
		Name:  "paper-platoon",
		Build: func(param.Params) (ScenarioDef, error) { return ScenarioDef{}, nil },
	})
}

// testMatrix is a 2x2 matrix reused by the expansion tests.
func testMatrix() Matrix {
	return Matrix{
		Scenarios: []MatrixScenario{
			{Name: "paper-platoon"},
			{Name: "platoon", Label: "platoon-8", Params: param.Params{"nrVehicles": 8}},
		},
		Attacks: []MatrixAttack{
			{Name: "delay", Values: []float64{0.5, 2},
				Starts:    []des.Time{17 * des.Second, 19 * des.Second},
				Durations: []des.Time{5 * des.Second}},
			{Name: "dos", Values: []float64{60},
				Starts:    []des.Time{17 * des.Second},
				Durations: []des.Time{60 * des.Second}},
		},
	}
}

// TestMatrixExpandDeterminism: the same matrix must expand to the same
// grid — same cell order, labels, bases and experiment vectors — every
// time; the shard/resume/merge invariants all sit on this.
func TestMatrixExpandDeterminism(t *testing.T) {
	a, err := testMatrix().Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	b, err := testMatrix().Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(a) != len(b) || len(a) != 4 {
		t.Fatalf("expansions have %d and %d cells, want 4", len(a), len(b))
	}
	for i := range a {
		if a[i].Index != i || b[i].Index != i {
			t.Errorf("cell %d carries indices %d/%d", i, a[i].Index, b[i].Index)
		}
		if a[i].Scenario != b[i].Scenario || a[i].Attack != b[i].Attack {
			t.Errorf("cell %d identity differs: %s/%s vs %s/%s",
				i, a[i].Scenario, a[i].Attack, b[i].Scenario, b[i].Attack)
		}
		if a[i].Setup.Base != b[i].Setup.Base {
			t.Errorf("cell %d base differs: %d vs %d", i, a[i].Setup.Base, b[i].Setup.Base)
		}
		sa, sb := a[i].Setup.Experiments(), b[i].Setup.Experiments()
		if len(sa) != len(sb) {
			t.Fatalf("cell %d grid sizes differ: %d vs %d", i, len(sa), len(sb))
		}
		for j := range sa {
			sa[j].Factory, sb[j].Factory = nil, nil
			if !reflect.DeepEqual(sa[j], sb[j]) {
				t.Errorf("cell %d experiment %d differs: %+v vs %+v", i, j, sa[j], sb[j])
			}
		}
	}
	// Scenario-major, attack-minor order with contiguous bases.
	wantOrder := []string{
		"paper-platoon/delay", "paper-platoon/dos",
		"platoon-8/delay", "platoon-8/dos",
	}
	base := 0
	for i, cell := range a {
		if got := cell.Scenario + "/" + cell.Attack; got != wantOrder[i] {
			t.Errorf("cell %d = %s, want %s", i, got, wantOrder[i])
		}
		if cell.Setup.Base != base {
			t.Errorf("cell %d base = %d, want %d", i, cell.Setup.Base, base)
		}
		base += cell.Setup.NumExperiments()
	}
	if n, err := testMatrix().NumExperiments(); err != nil || n != base {
		t.Errorf("NumExperiments = %d, %v, want %d", n, err, base)
	}
}

func TestMatrixRejectsDuplicateLabels(t *testing.T) {
	m := testMatrix()
	m.Scenarios[1] = MatrixScenario{Name: "paper-platoon"}
	if _, err := m.Expand(); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Errorf("Expand with duplicate labels = %v, want duplicate-label error", err)
	}
}

func TestMatrixUnknownNames(t *testing.T) {
	m := testMatrix()
	m.Scenarios[0].Name = "paper-platon"
	if _, err := m.Expand(); err == nil ||
		!strings.Contains(err.Error(), `did you mean "paper-platoon"`) {
		t.Errorf("Expand(paper-platon) = %v, want suggestion", err)
	}
	m = testMatrix()
	m.Attacks[0].Name = "dely"
	if _, err := m.Expand(); err == nil ||
		!strings.Contains(err.Error(), `did you mean "delay"`) {
		t.Errorf("Expand(dely) = %v, want suggestion", err)
	}
}

// TestPaperCampaignPresets pins the registry-hosted paper campaigns to
// the Table II grid shapes the seed hardcoded.
func TestPaperCampaignPresets(t *testing.T) {
	delay := core.PaperDelayCampaign()
	if got := delay.NumExperiments(); got != 11250 {
		t.Errorf("paper-delay grid = %d experiments, want 11250", got)
	}
	if delay.AttackName != "delay" || delay.Attack != core.AttackDelay {
		t.Errorf("paper-delay identifies as (%q, %v)", delay.AttackName, delay.Attack)
	}
	dos := core.PaperDoSCampaign()
	if got := dos.NumExperiments(); got != 25 {
		t.Errorf("paper-dos grid = %d experiments, want 25", got)
	}
	names := CampaignNames()
	for _, want := range []string{"paper-delay", "paper-dos"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Errorf("campaign %q not registered (have %v)", want, names)
		}
	}
	if _, err := LookupCampaign("paper-delai"); err == nil ||
		!strings.Contains(err.Error(), `did you mean "paper-delay"`) {
		t.Errorf("LookupCampaign(paper-delai) = %v, want suggestion", err)
	}
}
