package registry

import (
	"errors"
	"fmt"

	"comfase/internal/core"
	"comfase/internal/registry/param"
	"comfase/internal/sim/des"
)

// MatrixScenario selects one scenario cell axis entry.
type MatrixScenario struct {
	// Name is the registered scenario family.
	Name string
	// Label identifies the cell in result rows (default: Name). Two
	// parameterisations of the same family need distinct labels.
	Label string
	// Params parameterises the family (validated against its schema).
	Params param.Params
}

// MatrixAttack selects one attack axis entry with its sweep vectors.
type MatrixAttack struct {
	// Name is the registered attack family.
	Name string
	// Params are the family's extra parameters.
	Params param.Params
	// Targets are the attacked vehicle IDs (default: vehicle.2).
	Targets []string
	// Values, Starts, Durations are the per-cell sweep vectors.
	Values    []float64
	Starts    []des.Time
	Durations []des.Time
}

// Matrix is a campaign over the cross product scenarios x attacks: each
// pair is one cell running the attack's full Starts x Values x Durations
// grid in that scenario.
type Matrix struct {
	Scenarios []MatrixScenario
	Attacks   []MatrixAttack
}

// Cell is one expanded (scenario, attack) pair. Cells are ordered
// scenario-major, attack-minor, and experiment numbers are globally
// contiguous across cells (Setup.Base carries the offset), so shard,
// resume and merge semantics work unchanged on the flattened grid.
type Cell struct {
	// Index is the cell's position in the expansion order.
	Index int
	// Scenario is the cell's scenario label.
	Scenario string
	// Attack is the cell's attack family name.
	Attack string
	// Def is the resolved scenario definition.
	Def ScenarioDef
	// Setup is the cell's campaign grid; Setup.Scenario and
	// Setup.AttackName are stamped for result-row identity.
	Setup core.CampaignSetup
}

// Expand resolves the matrix into its deterministic cell list. The
// expansion is a pure function of the matrix: same input, same cell
// order, same experiment numbering — the property sharded runs rely on.
func (m Matrix) Expand() ([]Cell, error) {
	if len(m.Scenarios) == 0 {
		return nil, errors.New("registry: matrix needs at least one scenario")
	}
	if len(m.Attacks) == 0 {
		return nil, errors.New("registry: matrix needs at least one attack")
	}
	labels := make(map[string]bool, len(m.Scenarios))
	cells := make([]Cell, 0, len(m.Scenarios)*len(m.Attacks))
	base := 0
	for _, ms := range m.Scenarios {
		label := ms.Label
		if label == "" {
			label = ms.Name
		}
		if labels[label] {
			return nil, fmt.Errorf("registry: duplicate scenario label %q (set Label to disambiguate)", label)
		}
		labels[label] = true
		def, err := BuildScenario(ms.Name, ms.Params)
		if err != nil {
			return nil, fmt.Errorf("registry: matrix scenario %q: %w", label, err)
		}
		for _, ma := range m.Attacks {
			entry, err := LookupAttack(ma.Name)
			if err != nil {
				return nil, err
			}
			targets := ma.Targets
			if len(targets) == 0 {
				targets = []string{"vehicle.2"}
			}
			setup := core.CampaignSetup{
				Attack:     entry.Kind,
				AttackName: ma.Name,
				Params:     ma.Params,
				Scenario:   label,
				Base:       base,
				Targets:    targets,
				Values:     ma.Values,
				Starts:     ma.Starts,
				Durations:  ma.Durations,
			}
			if err := setup.Validate(); err != nil {
				return nil, fmt.Errorf("registry: matrix cell %s/%s: %w", label, ma.Name, err)
			}
			cells = append(cells, Cell{
				Index:    len(cells),
				Scenario: label,
				Attack:   ma.Name,
				Def:      def,
				Setup:    setup,
			})
			base += setup.NumExperiments()
		}
	}
	return cells, nil
}

// NumExperiments returns the flattened grid size across all cells.
func (m Matrix) NumExperiments() (int, error) {
	cells, err := m.Expand()
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range cells {
		total += c.Setup.NumExperiments()
	}
	return total, nil
}
