package registry

import (
	"fmt"
	"strings"

	"comfase/internal/platoon"
	"comfase/internal/registry/param"
	"comfase/internal/safety"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
	"comfase/internal/teleop"
	"comfase/internal/traffic"
)

// ControllerMix parses a comma-separated controller list ("cacc",
// "acc,ploeg", ...) into a factory that assigns controllers to
// followers round-robin: follower i (1-based platoon index) gets the
// (i-1 mod len)-th entry. A single name gives every follower that
// controller; heterogeneous platoons cycle through the list.
func ControllerMix(spec string) (scenario.ControllerFactory, error) {
	names := strings.Split(spec, ",")
	ctors := make([]func() platoon.Controller, 0, len(names))
	for _, raw := range names {
		name := strings.TrimSpace(raw)
		switch name {
		case "", "cacc":
			ctors = append(ctors, func() platoon.Controller { return platoon.DefaultCACC() })
		case "acc":
			ctors = append(ctors, func() platoon.Controller { return platoon.DefaultACC() })
		case "ploeg":
			ctors = append(ctors, func() platoon.Controller { return platoon.DefaultPloeg() })
		default:
			return nil, fmt.Errorf("registry: unknown controller %q%s; known: acc, cacc, ploeg",
				name, suggestController(name))
		}
	}
	return func(i int) platoon.Controller { return ctors[(i-1)%len(ctors)]() }, nil
}

func suggestController(name string) string {
	if s := param.Suggest(name, []string{"cacc", "acc", "ploeg"}); s != "" {
		return fmt.Sprintf(" (did you mean %q?)", s)
	}
	return ""
}

func init() {
	RegisterScenario(ScenarioEntry{
		Name: "paper-platoon",
		Desc: "the paper's demonstration scenario (§IV-A): 4 CACC vehicles, sinusoidal maneuver, 60 s",
		Build: func(param.Params) (ScenarioDef, error) {
			return ScenarioDef{
				Traffic:     scenario.PaperScenario(),
				Comm:        scenario.PaperCommModel(),
				Controllers: scenario.DefaultControllers(),
			}, nil
		},
	})

	RegisterScenario(ScenarioEntry{
		Name: "platoon",
		Desc: "parameterised platoon: size, controller mix, maneuver and optional AEB",
		Schema: param.Schema{
			{Name: "nrVehicles", Kind: param.Int, Default: 4, Min: param.Bound(2), Max: param.Bound(32),
				Desc: "platoon size including the leader"},
			{Name: "controllers", Kind: param.String, Default: "cacc",
				Desc: "comma-separated follower controller cycle (cacc, acc, ploeg)"},
			{Name: "maneuver", Kind: param.Enum, Default: "sinusoidal", Enum: []string{"sinusoidal", "braking", "constant"},
				Desc: "leader maneuver"},
			{Name: "aeb", Kind: param.Bool, Default: false,
				Desc: "equip followers with the emergency-braking monitor"},
			{Name: "totalSimTimeS", Kind: param.Float, Default: 60, Min: param.Bound(1), Max: param.Bound(600),
				Desc: "simulation horizon in seconds"},
		},
		Build: func(p param.Params) (ScenarioDef, error) {
			ts := scenario.PaperScenario()
			ts.NrVehicles = p.Int("nrVehicles")
			ts.TotalSimTime = des.FromSeconds(p.Float("totalSimTimeS"))
			switch p.Str("maneuver") {
			case "sinusoidal":
				// The paper's maneuver, already set.
			case "braking":
				ts.Maneuver = traffic.Braking{CruiseSpeed: 27.78, FinalSpeed: 0, BrakeAt: 30, Decel: 4}
			case "constant":
				ts.Maneuver = traffic.ConstantSpeed{Speed: 27.78}
			}
			if p.Bool("aeb") {
				aeb := safety.DefaultAEB()
				if err := aeb.Validate(); err != nil {
					return ScenarioDef{}, err
				}
				ts.AEB = aeb
			}
			factory, err := ControllerMix(p.Str("controllers"))
			if err != nil {
				return ScenarioDef{}, err
			}
			return ScenarioDef{
				Traffic:     ts,
				Comm:        scenario.PaperCommModel(),
				Controllers: factory,
			}, nil
		},
	})

	RegisterScenario(ScenarioEntry{
		Name: "teleop",
		Desc: "teleoperated followers driven purely over V2V (operator relay), leader brakes mid-run",
		Schema: param.Schema{
			{Name: "nrVehicles", Kind: param.Int, Default: 2, Min: param.Bound(2), Max: param.Bound(8),
				Desc: "vehicles including the (conventionally driven) leader"},
			{Name: "watchdogS", Kind: param.Float, Default: 0.5, Min: param.Bound(0), Max: param.Bound(10),
				Desc: "command-staleness safe-stop bound in seconds (0 = unprotected)"},
			{Name: "brakeAtS", Kind: param.Float, Default: 30, Min: param.Bound(1), Max: param.Bound(590),
				Desc: "when the leader starts braking"},
			{Name: "totalSimTimeS", Kind: param.Float, Default: 60, Min: param.Bound(1), Max: param.Bound(600),
				Desc: "simulation horizon in seconds"},
		},
		Build: func(p param.Params) (ScenarioDef, error) {
			ts := scenario.PaperScenario()
			ts.NrVehicles = p.Int("nrVehicles")
			ts.TotalSimTime = des.FromSeconds(p.Float("totalSimTimeS"))
			// A gentle mid-run braking maneuver: the safety question is
			// whether the remote followers still track it when the link
			// carrying their commands is attacked.
			ts.Maneuver = traffic.Braking{CruiseSpeed: 27.78, FinalSpeed: 15, BrakeAt: p.Float("brakeAtS"), Decel: 2}
			watchdog := p.Float("watchdogS")
			return ScenarioDef{
				Traffic: ts,
				Comm:    scenario.PaperCommModel(),
				Controllers: func(int) platoon.Controller {
					return teleop.DefaultDrive(watchdog)
				},
			}, nil
		},
	})
}
