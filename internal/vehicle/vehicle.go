// Package vehicle models the longitudinal dynamics of a single automated
// vehicle: physical capabilities (the vehicleFeatures of ComFASE Step-1),
// a first-order actuation lag like Plexe's engine model, and the
// semi-implicit Euler integration used by SUMO.
//
// The traffic package composes vehicles into a simulation; the platoon
// package issues acceleration commands via Vehicle.Command.
package vehicle

import (
	"errors"
	"fmt"
	"math"

	"comfase/internal/geo"
	"comfase/internal/invariant"
)

// Errors returned by specification validation.
var (
	ErrBadLength   = errors.New("vehicle: length must be positive")
	ErrBadMaxSpeed = errors.New("vehicle: max speed must be positive")
	ErrBadAccel    = errors.New("vehicle: max acceleration must be positive")
	ErrBadDecel    = errors.New("vehicle: max deceleration must be positive")
	ErrBadLag      = errors.New("vehicle: actuation lag must be non-negative")
)

// Spec holds the static capabilities of a vehicle, mirroring the
// vehicleFeatures of ComFASE Step-1.
type Spec struct {
	// ID names the vehicle ("vehicle.0" is the platoon leader, matching
	// the paper's numbering where Vehicle 1 leads and Vehicle 2 follows).
	ID string
	// Length is the vehicle length in metres (paper: 4 m).
	Length float64
	// MaxSpeed is the top speed in m/s (paper: 50 m/s).
	MaxSpeed float64
	// MaxAccel is the strongest achievable acceleration in m/s^2
	// (paper: 2.5 m/s^2).
	MaxAccel float64
	// MaxDecel is the strongest achievable braking deceleration in m/s^2,
	// expressed as a positive magnitude (paper: 9 m/s^2).
	MaxDecel float64
	// ActuationLag is the time constant (seconds) of the first-order
	// engine/brake response, as in Plexe's realistic engine model
	// (default 0.5 s). Zero means ideal, instantaneous actuation.
	ActuationLag float64
}

// Validate reports the first specification problem, or nil.
func (s Spec) Validate() error {
	switch {
	case s.Length <= 0:
		return ErrBadLength
	case s.MaxSpeed <= 0:
		return ErrBadMaxSpeed
	case s.MaxAccel <= 0:
		return ErrBadAccel
	case s.MaxDecel <= 0:
		return ErrBadDecel
	case s.ActuationLag < 0:
		return ErrBadLag
	}
	return nil
}

// PaperCar returns the vehicle capabilities of the paper's demonstration
// scenario (§IV-A1): 4 m long, 50 m/s top speed, 2.5 m/s^2 acceleration,
// 9 m/s^2 deceleration, 0.5 s actuation lag (Plexe default engine lag).
func PaperCar(id string) Spec {
	return Spec{
		ID:           id,
		Length:       4,
		MaxSpeed:     50,
		MaxAccel:     2.5,
		MaxDecel:     9,
		ActuationLag: 0.5,
	}
}

// State is the dynamic longitudinal state of a vehicle. Positions are
// measured at the FRONT bumper along the lane, like SUMO's vehicle
// position convention.
type State struct {
	// Pos is the front-bumper longitudinal position in metres.
	Pos float64
	// Speed in m/s (never negative; vehicles do not reverse).
	Speed float64
	// Accel is the realised acceleration in m/s^2 (negative = braking).
	Accel float64
	// Lane is the lane index the vehicle occupies.
	Lane int
}

// Rear returns the rear-bumper position given the vehicle length.
func (s State) Rear(length float64) float64 { return s.Pos - length }

// Vehicle couples a Spec with mutable state and the last commanded
// acceleration. It is a plain value-semantics building block; the traffic
// simulator owns and steps it.
type Vehicle struct {
	Spec  Spec
	State State

	// cmd is the most recent commanded acceleration (m/s^2) from the
	// active controller.
	cmd float64
	// stopped latches true once the vehicle has been halted by a
	// collision (SUMO "collision.action = stop" semantics).
	stopped bool

	// lagAlphaDt/lagAlphaVal memoize 1-exp(-dt/ActuationLag) for the last
	// step width seen. dt is the fixed traffic step in practice, so the
	// memo hits on every step after the first; it stores the result of
	// the identical computation, bit-for-bit, never an approximation.
	// Per-vehicle (not package-level) so concurrent workers never share
	// it. Reset wipes it via *v = Vehicle{...}, which is also exact.
	lagAlphaDt  float64
	lagAlphaVal float64
}

// lagAlpha returns 1-exp(-dt/Spec.ActuationLag), memoized on dt. The
// caller guarantees dt > 0 and ActuationLag > 0; a lag change goes
// through Reset, which clears the memo.
func (v *Vehicle) lagAlpha(dt float64) float64 {
	if dt != v.lagAlphaDt {
		v.lagAlphaDt = dt
		v.lagAlphaVal = 1 - math.Exp(-dt/v.Spec.ActuationLag)
	}
	return v.lagAlphaVal
}

// New constructs a vehicle at the given initial state.
func New(spec Spec, st State) (*Vehicle, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("vehicle %q: %w", spec.ID, err)
	}
	return &Vehicle{Spec: spec, State: st}, nil
}

// Reset reinitialises the vehicle in place as if freshly constructed by
// New(spec, st) — the reuse hook that lets the traffic simulator recycle
// vehicle objects across experiments instead of reallocating them.
func (v *Vehicle) Reset(spec Spec, st State) error {
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("vehicle %q: %w", spec.ID, err)
	}
	*v = Vehicle{Spec: spec, State: st}
	return nil
}

// Memento is a restorable snapshot of a vehicle's mutable state. The
// Spec is configuration, stable across a checkpointed experiment group,
// so only the dynamic fields are captured.
type Memento struct {
	State   State
	Cmd     float64
	Stopped bool
}

// SaveState captures the vehicle's mutable state.
func (v *Vehicle) SaveState(into *Memento) {
	into.State = v.State
	into.Cmd = v.cmd
	into.Stopped = v.stopped
}

// LoadState restores state captured by SaveState.
func (v *Vehicle) LoadState(from *Memento) {
	v.State = from.State
	v.cmd = from.Cmd
	v.stopped = from.Stopped
}

// Command sets the desired acceleration for subsequent steps. The value
// is clamped to the vehicle's physical envelope at actuation time.
func (v *Vehicle) Command(accel float64) {
	if math.IsNaN(accel) {
		accel = 0
	}
	v.cmd = accel
}

// Commanded reports the pending acceleration command.
func (v *Vehicle) Commanded() float64 { return v.cmd }

// Halt freezes the vehicle in place (post-collision stop). Further steps
// keep it stationary.
func (v *Vehicle) Halt() {
	v.stopped = true
	v.State.Speed = 0
	v.State.Accel = 0
}

// Halted reports whether the vehicle has been stopped by a collision.
func (v *Vehicle) Halted() bool { return v.stopped }

// CheckState runs the per-vehicle runtime invariants against the current
// state: position, speed and acceleration must be finite, speed
// non-negative, and position monotonic relative to prevPos (the position
// before the last Step — vehicles do not reverse). The traffic simulator
// calls it once per step when invariant checking is enabled; a non-nil
// result wraps invariant.ErrInvariant.
func (v *Vehicle) CheckState(prevPos float64) error {
	id := v.Spec.ID
	if err := invariant.CheckFinite(id, "pos", v.State.Pos); err != nil {
		return err
	}
	if err := invariant.CheckFinite(id, "speed", v.State.Speed); err != nil {
		return err
	}
	if err := invariant.CheckFinite(id, "accel", v.State.Accel); err != nil {
		return err
	}
	if err := invariant.CheckNonNegativeSpeed(id, v.State.Speed); err != nil {
		return err
	}
	return invariant.CheckMonotonicPos(id, prevPos, v.State.Pos)
}

// Step advances the dynamics by dt seconds:
//
//  1. first-order actuation lag pulls realised acceleration toward the
//     clamped command (tau = Spec.ActuationLag),
//  2. the acceleration is clamped to [-MaxDecel, +MaxAccel],
//  3. speed integrates semi-implicitly and clamps to [0, MaxSpeed],
//  4. position integrates with the new speed (SUMO Euler update).
//
// A vehicle standing still with a braking command stays at rest.
func (v *Vehicle) Step(dt float64) {
	if dt <= 0 || v.stopped {
		return
	}
	target := geo.Clamp(v.cmd, -v.Spec.MaxDecel, v.Spec.MaxAccel)
	a := v.State.Accel
	if v.Spec.ActuationLag <= 0 {
		a = target
	} else {
		// Exact discretisation of da/dt = (target - a)/tau over dt.
		a += (target - a) * v.lagAlpha(dt)
	}
	a = geo.Clamp(a, -v.Spec.MaxDecel, v.Spec.MaxAccel)

	speed := v.State.Speed + a*dt
	switch {
	case speed < 0:
		speed = 0
		a = 0 // standing still: no realised deceleration
	case speed > v.Spec.MaxSpeed:
		speed = v.Spec.MaxSpeed
		a = 0
	}
	v.State.Accel = a
	v.State.Speed = speed
	v.State.Pos += speed * dt
}
