package vehicle

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"comfase/internal/invariant"
)

func TestSpecValidate(t *testing.T) {
	valid := PaperCar("v")
	tests := []struct {
		name    string
		mutate  func(*Spec)
		wantErr error
	}{
		{name: "paper car valid", mutate: func(*Spec) {}, wantErr: nil},
		{name: "zero length", mutate: func(s *Spec) { s.Length = 0 }, wantErr: ErrBadLength},
		{name: "zero max speed", mutate: func(s *Spec) { s.MaxSpeed = 0 }, wantErr: ErrBadMaxSpeed},
		{name: "zero accel", mutate: func(s *Spec) { s.MaxAccel = 0 }, wantErr: ErrBadAccel},
		{name: "zero decel", mutate: func(s *Spec) { s.MaxDecel = 0 }, wantErr: ErrBadDecel},
		{name: "negative lag", mutate: func(s *Spec) { s.ActuationLag = -1 }, wantErr: ErrBadLag},
		{name: "zero lag ok", mutate: func(s *Spec) { s.ActuationLag = 0 }, wantErr: nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := valid
			tt.mutate(&s)
			if err := s.Validate(); !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestPaperCarParameters(t *testing.T) {
	s := PaperCar("vehicle.0")
	if s.Length != 4 || s.MaxSpeed != 50 || s.MaxAccel != 2.5 || s.MaxDecel != 9 {
		t.Errorf("PaperCar = %+v does not match §IV-A1", s)
	}
}

func TestNewRejectsInvalidSpec(t *testing.T) {
	if _, err := New(Spec{ID: "bad"}, State{}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func ideal(id string) Spec {
	s := PaperCar(id)
	s.ActuationLag = 0 // ideal actuation simplifies closed-form checks
	return s
}

func TestStepConstantSpeed(t *testing.T) {
	v, err := New(ideal("v"), State{Pos: 100, Speed: 20})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 100; i++ {
		v.Step(0.01)
	}
	if !almost(v.State.Pos, 120, 1e-9) {
		t.Errorf("Pos = %v, want 120", v.State.Pos)
	}
	if v.State.Speed != 20 {
		t.Errorf("Speed = %v, want 20", v.State.Speed)
	}
}

func TestStepAcceleration(t *testing.T) {
	v, _ := New(ideal("v"), State{Speed: 10})
	v.Command(2)
	for i := 0; i < 100; i++ { // 1 second
		v.Step(0.01)
	}
	if !almost(v.State.Speed, 12, 1e-9) {
		t.Errorf("Speed = %v, want 12", v.State.Speed)
	}
}

func TestStepClampsToEnvelope(t *testing.T) {
	v, _ := New(ideal("v"), State{Speed: 10})
	v.Command(100) // way beyond 2.5 m/s^2
	v.Step(0.01)
	if !almost(v.State.Accel, 2.5, 1e-9) {
		t.Errorf("Accel = %v, want clamp to 2.5", v.State.Accel)
	}
	v.Command(-100) // beyond 9 m/s^2 braking
	v.Step(0.01)
	if !almost(v.State.Accel, -9, 1e-9) {
		t.Errorf("Accel = %v, want clamp to -9", v.State.Accel)
	}
}

func TestStepSpeedNeverNegative(t *testing.T) {
	v, _ := New(ideal("v"), State{Speed: 0.5})
	v.Command(-9)
	for i := 0; i < 200; i++ {
		v.Step(0.01)
		if v.State.Speed < 0 {
			t.Fatalf("speed went negative: %v", v.State.Speed)
		}
	}
	if v.State.Speed != 0 {
		t.Errorf("Speed = %v, want full stop", v.State.Speed)
	}
	if v.State.Accel != 0 {
		t.Errorf("Accel = %v at standstill, want 0", v.State.Accel)
	}
}

func TestStepSpeedCapped(t *testing.T) {
	v, _ := New(ideal("v"), State{Speed: 49.9})
	v.Command(2.5)
	for i := 0; i < 1000; i++ {
		v.Step(0.01)
	}
	if v.State.Speed != 50 {
		t.Errorf("Speed = %v, want cap at MaxSpeed", v.State.Speed)
	}
}

func TestActuationLagFirstOrder(t *testing.T) {
	s := PaperCar("v") // lag 0.5 s
	v, _ := New(s, State{Speed: 20})
	v.Command(2)
	// After exactly one time constant the realised acceleration should be
	// ~63.2% of the command.
	for i := 0; i < 50; i++ { // 0.5 s at 10 ms
		v.Step(0.01)
	}
	want := 2 * (1 - math.Exp(-1))
	if !almost(v.State.Accel, want, 1e-6) {
		t.Errorf("Accel after tau = %v, want %v", v.State.Accel, want)
	}
}

func TestActuationLagStepInvariantToDt(t *testing.T) {
	// The exact exponential discretisation makes the response independent
	// of the step size.
	run := func(dt float64, n int) float64 {
		v, _ := New(PaperCar("v"), State{Speed: 20})
		v.Command(2)
		for i := 0; i < n; i++ {
			v.Step(dt)
		}
		return v.State.Accel
	}
	coarse := run(0.1, 10)
	fine := run(0.01, 100)
	if !almost(coarse, fine, 1e-9) {
		t.Errorf("lag response depends on dt: %v vs %v", coarse, fine)
	}
}

func TestCommandNaNSanitised(t *testing.T) {
	v, _ := New(ideal("v"), State{Speed: 10})
	v.Command(math.NaN())
	if v.Commanded() != 0 {
		t.Errorf("NaN command stored as %v", v.Commanded())
	}
}

func TestHalt(t *testing.T) {
	v, _ := New(ideal("v"), State{Pos: 50, Speed: 30})
	v.Halt()
	if !v.Halted() {
		t.Fatal("Halted = false after Halt")
	}
	v.Command(2.5)
	v.Step(0.01)
	if v.State.Pos != 50 || v.State.Speed != 0 {
		t.Errorf("halted vehicle moved: %+v", v.State)
	}
}

func TestStepZeroDtNoop(t *testing.T) {
	v, _ := New(ideal("v"), State{Pos: 10, Speed: 5})
	v.Step(0)
	v.Step(-1)
	if v.State.Pos != 10 || v.State.Speed != 5 {
		t.Errorf("zero/negative dt changed state: %+v", v.State)
	}
}

func TestRear(t *testing.T) {
	st := State{Pos: 104}
	if got := st.Rear(4); got != 100 {
		t.Errorf("Rear = %v, want 100", got)
	}
}

// Property: regardless of the command sequence, the physical envelope
// holds: 0 <= speed <= MaxSpeed and -MaxDecel <= accel <= MaxAccel, and
// position is nondecreasing.
func TestEnvelopeInvariantProperty(t *testing.T) {
	f := func(cmds []float64) bool {
		v, err := New(PaperCar("v"), State{Speed: 25})
		if err != nil {
			return false
		}
		prevPos := v.State.Pos
		for _, c := range cmds {
			v.Command(c)
			for i := 0; i < 10; i++ {
				v.Step(0.01)
			}
			s := v.State
			if s.Speed < 0 || s.Speed > v.Spec.MaxSpeed {
				return false
			}
			if s.Accel < -v.Spec.MaxDecel-1e-9 || s.Accel > v.Spec.MaxAccel+1e-9 {
				return false
			}
			if s.Pos < prevPos {
				return false
			}
			prevPos = s.Pos
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestCheckState(t *testing.T) {
	v, err := New(PaperCar("vehicle.2"), State{Pos: 100, Speed: 27, Accel: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.CheckState(99); err != nil {
		t.Errorf("healthy state: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*Vehicle)
		prevPos float64
	}{
		{"nan-pos", func(v *Vehicle) { v.State.Pos = math.NaN() }, 99},
		{"inf-speed", func(v *Vehicle) { v.State.Speed = math.Inf(1) }, 99},
		{"nan-accel", func(v *Vehicle) { v.State.Accel = math.NaN() }, 99},
		{"negative-speed", func(v *Vehicle) { v.State.Speed = -1 }, 99},
		{"reversed", func(v *Vehicle) {}, 101},
	}
	for _, c := range cases {
		v, _ := New(PaperCar("vehicle.2"), State{Pos: 100, Speed: 27})
		c.mutate(v)
		err := v.CheckState(c.prevPos)
		if err == nil {
			t.Errorf("%s: no violation reported", c.name)
			continue
		}
		if !errors.Is(err, invariant.ErrInvariant) {
			t.Errorf("%s: %v does not wrap ErrInvariant", c.name, err)
		}
	}
}
