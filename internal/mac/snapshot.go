package mac

import "comfase/internal/sim/des"

// EDCAState is a restorable snapshot of an EDCA entity's mutable state:
// queue contents, per-AC backoff, carrier-sense and transmit flags, the
// pending attempt event and the counters. Configuration (kernel, RNG,
// schedule, hooks) is stable across a checkpointed experiment group and
// is not captured; the backoff RNG stream is snapshotted separately by
// the radio that owns it.
//
// The zero value is ready to use; queue buffers grow on first SaveState
// and are reused afterwards.
type EDCAState struct {
	queues       [numAC][]Frame
	backoff      [numAC]int
	busy         bool
	transmitting bool
	attempt      des.EventID
	deferAC      AccessCategory
	deferStart   des.Time
	stats        Stats
}

// SaveState captures the entity's mutable state into st, reusing st's
// queue buffers.
func (m *EDCA) SaveState(st *EDCAState) {
	for i := range m.acs {
		st.queues[i] = append(st.queues[i][:0], m.acs[i].queue...)
		st.backoff[i] = m.acs[i].backoff
	}
	st.busy = m.busy
	st.transmitting = m.transmitting
	st.attempt = m.attempt
	st.deferAC = m.deferAC
	st.deferStart = m.deferStart
	st.stats = m.stats
}

// LoadState restores state captured by SaveState. The saved attempt
// EventID is only meaningful together with a Kernel.Restore to the
// matching snapshot, which rewinds the generation counters that make it
// valid again.
func (m *EDCA) LoadState(st *EDCAState) {
	for i := range m.acs {
		m.acs[i].queue = append(m.acs[i].queue[:0], st.queues[i]...)
		m.acs[i].backoff = st.backoff[i]
	}
	m.busy = st.busy
	m.transmitting = st.transmitting
	m.attempt = st.attempt
	m.deferAC = st.deferAC
	m.deferStart = st.deferStart
	m.stats = st.stats
}
