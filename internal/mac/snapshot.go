package mac

import "comfase/internal/sim/des"

// EDCAState is a restorable snapshot of an EDCA entity's mutable state:
// queue contents, per-AC backoff, carrier-sense and transmit flags, the
// pending attempt event and the counters. Configuration (kernel, RNG,
// schedule, hooks) is stable across a checkpointed experiment group and
// is not captured; the backoff RNG stream is snapshotted separately by
// the radio that owns it.
//
// The zero value is ready to use; queue buffers grow on first SaveState
// and are reused afterwards.
type EDCAState struct {
	queues       [numAC][]Frame
	backoff      [numAC]int
	busy         bool
	transmitting bool
	attempt      des.EventID
	deferAC      AccessCategory
	deferStart   des.Time
	stats        Stats
}

// SaveState captures the entity's mutable state into st, reusing st's
// queue buffers. Ring contents are serialised in queue order (head
// first), so the snapshot is independent of where the ring's head
// happens to sit.
func (m *EDCA) SaveState(st *EDCAState) {
	for i := range m.acs {
		ac := &m.acs[i]
		q := st.queues[i][:0]
		for j := 0; j < ac.count; j++ {
			q = append(q, ac.ring[(ac.head+j)%len(ac.ring)])
		}
		st.queues[i] = q
		st.backoff[i] = ac.backoff
	}
	st.busy = m.busy
	st.transmitting = m.transmitting
	st.attempt = m.attempt
	st.deferAC = m.deferAC
	st.deferStart = m.deferStart
	st.stats = m.stats
}

// LoadState restores state captured by SaveState. The saved attempt
// EventID is only meaningful together with a Kernel.Restore to the
// matching snapshot, which rewinds the generation counters that make it
// valid again. Each ring is rebuilt with head 0; only queue order
// matters for determinism, not the head index, so a restored entity
// replays identically to the captured one.
func (m *EDCA) LoadState(st *EDCAState) {
	for i := range m.acs {
		ac := &m.acs[i]
		for j := range ac.ring {
			ac.ring[j] = Frame{}
		}
		copy(ac.ring, st.queues[i])
		ac.head = 0
		ac.count = len(st.queues[i])
		ac.backoff = st.backoff[i]
	}
	m.busy = st.busy
	m.transmitting = st.transmitting
	m.attempt = st.attempt
	m.deferAC = st.deferAC
	m.deferStart = st.deferStart
	m.stats = st.stats
}
