package mac

import (
	"errors"
	"testing"

	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
	"comfase/internal/wave1609"
	"testing/quick"
)

// testHarness wires an EDCA entity to a fake medium that records
// transmissions and completes them after the airtime.
type testHarness struct {
	k    *des.Kernel
	m    *EDCA
	sent []sentFrame
	air  des.Time
}

type sentFrame struct {
	at des.Time
	f  Frame
}

func newHarness(t *testing.T, sched wave1609.Schedule) *testHarness {
	t.Helper()
	h := &testHarness{k: des.NewKernel(), air: 80 * des.Microsecond}
	m, err := New(Config{
		Kernel:   h.k,
		RNG:      rng.New(1, "mac-test"),
		Schedule: sched,
		Airtime:  func(int) des.Time { return h.air },
		Transmit: func(f Frame) {
			h.sent = append(h.sent, sentFrame{at: h.k.Now(), f: f})
			h.k.ScheduleAfter(h.air, h.m.TxDone)
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h.m = m
	return h
}

func beacon(seq uint64) Frame {
	return Frame{Seq: seq, Src: "v", Bits: 424, AC: ACVideo}
}

func TestNewValidation(t *testing.T) {
	base := func() Config {
		return Config{
			Kernel:   des.NewKernel(),
			RNG:      rng.New(1, "x"),
			Schedule: wave1609.NewSchedule(wave1609.AccessContinuous),
			Airtime:  func(int) des.Time { return des.Microsecond },
			Transmit: func(Frame) {},
		}
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "nil kernel", mutate: func(c *Config) { c.Kernel = nil }},
		{name: "nil rng", mutate: func(c *Config) { c.RNG = nil }},
		{name: "nil airtime", mutate: func(c *Config) { c.Airtime = nil }},
		{name: "nil transmit", mutate: func(c *Config) { c.Transmit = nil }},
		{name: "bad schedule", mutate: func(c *Config) { c.Schedule.Mode = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base()
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if _, err := New(base()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestAccessCategoryParams(t *testing.T) {
	if !ACVoice.Valid() || AccessCategory(0).Valid() || AccessCategory(9).Valid() {
		t.Error("Valid wrong")
	}
	if ACVoice.String() != "AC_VO" || ACBackground.String() != "AC_BK" {
		t.Error("String wrong")
	}
	// Higher priority -> shorter AIFS.
	if !(ACVoice.AIFS() < ACVideo.AIFS() &&
		ACVideo.AIFS() < ACBestEffort.AIFS() &&
		ACBestEffort.AIFS() < ACBackground.AIFS()) {
		t.Error("AIFS ordering violated")
	}
	// AC_VO AIFS = SIFS + 2*slot = 32 + 26 = 58 us.
	if got := ACVoice.AIFS(); got != 58*des.Microsecond {
		t.Errorf("VO AIFS = %v, want 58us", got)
	}
}

func TestImmediateTransmitOnIdleChannel(t *testing.T) {
	h := newHarness(t, wave1609.NewSchedule(wave1609.AccessContinuous))
	if err := h.m.Enqueue(beacon(1)); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	if err := h.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(h.sent) != 1 {
		t.Fatalf("sent %d frames, want 1", len(h.sent))
	}
	// Idle medium, empty queue: transmit after exactly one AIFS.
	if h.sent[0].at != ACVideo.AIFS() {
		t.Errorf("tx at %v, want AIFS %v", h.sent[0].at, ACVideo.AIFS())
	}
}

func TestEnqueueRejectsBadFrames(t *testing.T) {
	h := newHarness(t, wave1609.NewSchedule(wave1609.AccessContinuous))
	if err := h.m.Enqueue(Frame{Bits: 100}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("missing AC accepted: %v", err)
	}
	if err := h.m.Enqueue(Frame{AC: ACVideo}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("zero bits accepted: %v", err)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	h := newHarness(t, wave1609.NewSchedule(wave1609.AccessContinuous))
	h.m.ChannelBusy() // block transmissions so the queue fills
	var full int
	for i := 0; i < 40; i++ {
		if err := h.m.Enqueue(beacon(uint64(i))); errors.Is(err, ErrQueueFull) {
			full++
		}
	}
	if full != 8 { // default queue 32
		t.Errorf("dropped %d frames, want 8", full)
	}
	if h.m.Stats().DroppedQueueFull != 8 {
		t.Errorf("stats dropped = %d", h.m.Stats().DroppedQueueFull)
	}
	if h.m.QueueLen(ACVideo) != 32 {
		t.Errorf("queue len = %d", h.m.QueueLen(ACVideo))
	}
}

func TestBusyChannelDefersTransmission(t *testing.T) {
	h := newHarness(t, wave1609.NewSchedule(wave1609.AccessContinuous))
	h.m.ChannelBusy()
	if err := h.m.Enqueue(beacon(1)); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	// Medium stays busy until 1 ms.
	h.k.ScheduleAt(des.Millisecond, h.m.ChannelIdle)
	if err := h.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(h.sent) != 1 {
		t.Fatalf("sent %d, want 1", len(h.sent))
	}
	if h.sent[0].at < des.Millisecond+ACVideo.AIFS() {
		t.Errorf("tx at %v before busy period ended + AIFS", h.sent[0].at)
	}
	// A frame that arrived on a busy medium must have drawn a backoff.
	if h.m.Stats().BackoffsDrawn == 0 {
		t.Error("no backoff drawn for busy arrival")
	}
}

func TestBusyInterruptsPendingAttempt(t *testing.T) {
	h := newHarness(t, wave1609.NewSchedule(wave1609.AccessContinuous))
	if err := h.m.Enqueue(beacon(1)); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	// Busy hits during the AIFS wait.
	h.k.ScheduleAt(10*des.Microsecond, h.m.ChannelBusy)
	h.k.ScheduleAt(500*des.Microsecond, h.m.ChannelIdle)
	if err := h.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(h.sent) != 1 {
		t.Fatalf("sent %d, want 1", len(h.sent))
	}
	if h.m.Stats().BusyDeferrals != 1 {
		t.Errorf("BusyDeferrals = %d, want 1", h.m.Stats().BusyDeferrals)
	}
	if h.sent[0].at < 500*des.Microsecond+ACVideo.AIFS() {
		t.Errorf("tx at %v too early after interruption", h.sent[0].at)
	}
}

func TestBackToBackFramesRecontend(t *testing.T) {
	h := newHarness(t, wave1609.NewSchedule(wave1609.AccessContinuous))
	for i := 0; i < 3; i++ {
		if err := h.m.Enqueue(beacon(uint64(i))); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	if err := h.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(h.sent) != 3 {
		t.Fatalf("sent %d, want 3", len(h.sent))
	}
	for i := 1; i < 3; i++ {
		gap := h.sent[i].at.Sub(h.sent[i-1].at)
		if gap < h.air+ACVideo.AIFS() {
			t.Errorf("frame %d gap %v shorter than airtime+AIFS", i, gap)
		}
	}
	// Queued follow-ups draw post-transmission backoffs.
	if h.m.Stats().BackoffsDrawn < 2 {
		t.Errorf("BackoffsDrawn = %d, want >= 2", h.m.Stats().BackoffsDrawn)
	}
}

func TestInternalContentionHigherACWins(t *testing.T) {
	h := newHarness(t, wave1609.NewSchedule(wave1609.AccessContinuous))
	h.m.ChannelBusy() // hold both frames in queue
	lo := beacon(1)
	lo.AC = ACBestEffort
	hi := beacon(2)
	hi.AC = ACVoice
	_ = h.m.Enqueue(lo)
	_ = h.m.Enqueue(hi)
	h.k.ScheduleAt(des.Millisecond, h.m.ChannelIdle)
	if err := h.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(h.sent) != 2 {
		t.Fatalf("sent %d, want 2", len(h.sent))
	}
	if h.sent[0].f.AC != ACVoice {
		t.Errorf("first tx was %v, want AC_VO", h.sent[0].f.AC)
	}
}

func TestAlternatingAccessDefersToCCHWindow(t *testing.T) {
	h := newHarness(t, wave1609.NewSchedule(wave1609.AccessAlternating))
	// Enqueue during the SCH interval (t = 60 ms).
	h.k.ScheduleAt(60*des.Millisecond, func() {
		if err := h.m.Enqueue(beacon(1)); err != nil {
			t.Errorf("Enqueue: %v", err)
		}
	})
	if err := h.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(h.sent) != 1 {
		t.Fatalf("sent %d, want 1", len(h.sent))
	}
	// Next CCH window opens at 104 ms (guard passed).
	if h.sent[0].at < 104*des.Millisecond || h.sent[0].at > 105*des.Millisecond {
		t.Errorf("tx at %v, want within next CCH window start", h.sent[0].at)
	}
}

func TestTxDoneWithoutTransmittingIsNoop(t *testing.T) {
	h := newHarness(t, wave1609.NewSchedule(wave1609.AccessContinuous))
	h.m.TxDone() // must not panic or corrupt state
	if h.m.Transmitting() {
		t.Error("Transmitting after spurious TxDone")
	}
}

func TestChannelBusyIdempotent(t *testing.T) {
	h := newHarness(t, wave1609.NewSchedule(wave1609.AccessContinuous))
	h.m.ChannelBusy()
	h.m.ChannelBusy()
	if !h.m.Busy() {
		t.Error("not busy")
	}
	h.m.ChannelIdle()
	h.m.ChannelIdle()
	if h.m.Busy() {
		t.Error("still busy")
	}
}

func TestManyFramesAllDelivered(t *testing.T) {
	h := newHarness(t, wave1609.NewSchedule(wave1609.AccessContinuous))
	const n = 100
	tick := des.NewTicker(h.k, 100*des.Millisecond, des.PriorityNormal, func() {
		if h.m.Stats().Enqueued < n {
			_ = h.m.Enqueue(beacon(h.m.Stats().Enqueued))
		}
	})
	tick.Start(0)
	if err := h.k.RunUntil(11 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	tick.StopTicker()
	if len(h.sent) != n {
		t.Errorf("sent %d, want %d", len(h.sent), n)
	}
	if h.m.Stats().Sent != n {
		t.Errorf("stats sent = %d", h.m.Stats().Sent)
	}
}

// Property: the MAC, fed random frame arrival patterns with random busy
// periods, eventually sends every accepted frame and never double-sends.
func TestEventualDeliveryProperty(t *testing.T) {
	f := func(arrivalsMs []uint8, busyAtMs uint8, busyLenMs uint8) bool {
		if len(arrivalsMs) == 0 || len(arrivalsMs) > 20 {
			return true
		}
		h := newHarness(t, wave1609.NewSchedule(wave1609.AccessContinuous))
		accepted := 0
		for i, a := range arrivalsMs {
			i := i
			h.k.ScheduleAt(des.Time(a)*des.Millisecond, func() {
				if err := h.m.Enqueue(beacon(uint64(i))); err == nil {
					accepted++
				}
			})
		}
		busyStart := des.Time(busyAtMs) * des.Millisecond
		busyEnd := busyStart + des.Time(busyLenMs)*des.Millisecond + des.Millisecond
		h.k.ScheduleAt(busyStart, h.m.ChannelBusy)
		h.k.ScheduleAt(busyEnd, h.m.ChannelIdle)
		if err := h.k.Run(); err != nil {
			return false
		}
		return len(h.sent) == accepted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: drawn backoffs always stay within [0, CWmin] slots of extra
// deferral beyond AIFS (no contention-window escalation for broadcast).
func TestBackoffBoundedProperty(t *testing.T) {
	h := newHarness(t, wave1609.NewSchedule(wave1609.AccessContinuous))
	// Force backoff draws by keeping the channel busy at every arrival.
	h.m.ChannelBusy()
	for i := 0; i < 30; i++ {
		_ = h.m.Enqueue(beacon(uint64(i)))
	}
	h.k.ScheduleAt(des.Millisecond, h.m.ChannelIdle)
	if err := h.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	maxGap := h.air + ACVideo.AIFS() +
		des.Time(ACVideo.Params().CWmin)*SlotTime
	for i := 1; i < len(h.sent); i++ {
		gap := h.sent[i].at.Sub(h.sent[i-1].at)
		if gap > maxGap {
			t.Fatalf("inter-frame gap %v exceeds airtime+AIFS+CWmin slots (%v)", gap, maxGap)
		}
	}
}
