// Package mac implements the IEEE 802.11p EDCA medium-access layer of
// the Veins substitute: per-access-category queues, AIFS deferral, slot
// backoff frozen while the channel is busy, internal AC contention, and
// IEEE 1609.4 transmit-window gating. Platooning beacons are broadcast
// frames, so there are no ACKs and no retransmissions — exactly the
// fire-and-forget CAM path the ComFASE attacks disturb.
package mac

import (
	"errors"
	"fmt"

	"comfase/internal/msg"
	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
	"comfase/internal/wave1609"
)

// 802.11p timing on a 10 MHz channel.
const (
	// SlotTime is the EDCA slot duration.
	SlotTime = 13 * des.Microsecond
	// SIFS is the short interframe space.
	SIFS = 32 * des.Microsecond
)

// AccessCategory is an EDCA traffic class.
type AccessCategory int

// Access categories in increasing priority. Veins sends CAMs at ACVoice
// by default on the CCH; platooning beacons use ACVideo in Plexe.
const (
	ACBackground AccessCategory = iota + 1
	ACBestEffort
	ACVideo
	ACVoice
	numAC = 4
)

// String implements fmt.Stringer.
func (ac AccessCategory) String() string {
	switch ac {
	case ACBackground:
		return "AC_BK"
	case ACBestEffort:
		return "AC_BE"
	case ACVideo:
		return "AC_VI"
	case ACVoice:
		return "AC_VO"
	default:
		return fmt.Sprintf("AC(%d)", int(ac))
	}
}

// Valid reports whether ac is a defined category.
func (ac AccessCategory) Valid() bool {
	return ac >= ACBackground && ac <= ACVoice
}

// EDCAParams are the contention parameters of one access category.
type EDCAParams struct {
	// AIFSN is the arbitration interframe space number.
	AIFSN int
	// CWmin is the minimum contention window (slots).
	CWmin int
	// CWmax is the maximum contention window (slots); broadcast frames
	// never escalate beyond CWmin, but the field documents the standard.
	CWmax int
}

// Params returns the 802.11p EDCA parameter set for the category
// (CWmin=15 aCWmin on 10 MHz PHY).
func (ac AccessCategory) Params() EDCAParams {
	switch ac {
	case ACVoice:
		return EDCAParams{AIFSN: 2, CWmin: 3, CWmax: 7}
	case ACVideo:
		return EDCAParams{AIFSN: 3, CWmin: 7, CWmax: 15}
	case ACBestEffort:
		return EDCAParams{AIFSN: 6, CWmin: 15, CWmax: 1023}
	default: // ACBackground
		return EDCAParams{AIFSN: 9, CWmin: 15, CWmax: 1023}
	}
}

// AIFS returns the arbitration interframe space of the category.
func (ac AccessCategory) AIFS() des.Time {
	return SIFS + des.Time(ac.Params().AIFSN)*SlotTime
}

// Frame is a MAC service data unit to broadcast.
//
// The platooning beacon — the only message on the steady-state hot path
// — travels inline in the Beacon field rather than boxed into Payload,
// so sending one copies a struct instead of allocating an interface
// value. Other applications (teleop commands) keep using Payload.
type Frame struct {
	// Seq is an application-level sequence number (for tracing).
	Seq uint64
	// Src is the sender's node ID.
	Src string
	// Bits is the PSDU size in bits (application payload + MAC
	// overhead); the PHY derives the airtime from it.
	Bits int
	// AC is the EDCA access category.
	AC AccessCategory
	// Beacon carries a platooning beacon inline when HasBeacon is set;
	// it is ignored otherwise.
	Beacon msg.Beacon
	// HasBeacon discriminates the inline Beacon from the generic
	// Payload.
	HasBeacon bool
	// Payload carries any non-beacon application message (e.g. a teleop
	// Command). Nil for beacon frames.
	Payload any
}

// Errors returned by the MAC.
var (
	ErrQueueFull = errors.New("mac: queue full, frame dropped")
	ErrBadFrame  = errors.New("mac: invalid frame")
)

// Stats counts MAC-level events for analysis and tests.
type Stats struct {
	// Enqueued counts frames accepted into a queue.
	Enqueued uint64
	// Sent counts frames handed to the PHY.
	Sent uint64
	// DroppedQueueFull counts frames rejected on a full queue.
	DroppedQueueFull uint64
	// BackoffsDrawn counts fresh backoff draws.
	BackoffsDrawn uint64
	// BusyDeferrals counts attempts interrupted by a busy channel.
	BusyDeferrals uint64
}

// Config configures an EDCA entity.
type Config struct {
	// Kernel drives the timers (required).
	Kernel *des.Kernel
	// RNG supplies backoff draws (required).
	RNG *rng.Source
	// Schedule gates transmissions per IEEE 1609.4.
	Schedule wave1609.Schedule
	// Airtime maps PSDU bits to on-air duration (required; provided by
	// the PHY's MCS).
	Airtime func(bits int) des.Time
	// Transmit starts a transmission on the shared medium (required).
	// The medium must call TxDone when the transmission ends.
	Transmit func(Frame)
	// MaxQueue is the per-AC queue capacity. Zero defaults to 32.
	MaxQueue int
}

// acState is the contention state of one access category. The queue is
// a fixed-capacity ring buffer: frames are consumed by advancing head,
// never by reslicing, so steady-state enqueue/dequeue touches no
// allocator. Capacity equals the configured MaxQueue and never regrows.
type acState struct {
	ring  []Frame
	head  int
	count int
	// backoff is the remaining backoff slots; -1 means no backoff is
	// pending (immediate access after AIFS is allowed).
	backoff int
}

// push appends a frame at the tail. The caller has checked capacity.
func (st *acState) push(f Frame) {
	st.ring[(st.head+st.count)%len(st.ring)] = f
	st.count++
}

// front returns the head frame without removing it.
func (st *acState) front() *Frame { return &st.ring[st.head] }

// pop removes and returns the head frame, clearing the slot so the ring
// does not retain payload references past dequeue.
func (st *acState) pop() Frame {
	f := st.ring[st.head]
	st.ring[st.head] = Frame{}
	st.head = (st.head + 1) % len(st.ring)
	st.count--
	return f
}

// EDCA is one station's 802.11p broadcast MAC entity.
type EDCA struct {
	k        *des.Kernel
	rng      *rng.Source
	sched    wave1609.Schedule
	airtime  func(int) des.Time
	transmit func(Frame)
	maxQueue int

	acs [numAC]acState

	busy         bool
	transmitting bool

	// attempt is the pending transmission-start event (0 = none).
	attempt des.EventID
	// deferAC is the category the pending attempt belongs to.
	deferAC AccessCategory
	// deferStart is when the current AIFS+backoff deferral began.
	deferStart des.Time

	// txStartFn is the bound txStart method, created once so every kick
	// does not allocate a fresh method value.
	txStartFn des.Handler

	stats Stats
}

// New builds an EDCA entity.
func New(cfg Config) (*EDCA, error) {
	m := &EDCA{}
	m.txStartFn = m.txStart
	if err := m.Reset(cfg); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset reinitialises the entity in place for a new configuration,
// reusing the per-AC queue storage. It restores exactly the state New
// leaves behind — empty queues, no backoff, idle medium, zeroed counters
// — which is what lets a pooled radio replay a fresh run bit-for-bit.
func (m *EDCA) Reset(cfg Config) error {
	switch {
	case cfg.Kernel == nil:
		return errors.New("mac: Config.Kernel is required")
	case cfg.RNG == nil:
		return errors.New("mac: Config.RNG is required")
	case cfg.Airtime == nil:
		return errors.New("mac: Config.Airtime is required")
	case cfg.Transmit == nil:
		return errors.New("mac: Config.Transmit is required")
	}
	if err := cfg.Schedule.Validate(); err != nil {
		return err
	}
	maxQ := cfg.MaxQueue
	if maxQ <= 0 {
		maxQ = 32
	}
	m.k = cfg.Kernel
	m.rng = cfg.RNG
	m.sched = cfg.Schedule
	m.airtime = cfg.Airtime
	m.transmit = cfg.Transmit
	m.maxQueue = maxQ
	for i := range m.acs {
		st := &m.acs[i]
		if len(st.ring) != maxQ {
			st.ring = make([]Frame, maxQ)
		} else {
			for j := range st.ring {
				st.ring[j] = Frame{}
			}
		}
		st.head = 0
		st.count = 0
		st.backoff = -1
	}
	m.busy = false
	m.transmitting = false
	m.attempt = 0
	m.deferAC = 0
	m.deferStart = 0
	m.stats = Stats{}
	return nil
}

// Stats returns a snapshot of the MAC counters.
func (m *EDCA) Stats() Stats { return m.stats }

// QueueLen reports the number of frames queued in the category.
func (m *EDCA) QueueLen(ac AccessCategory) int {
	if !ac.Valid() {
		return 0
	}
	return m.acs[ac-1].count
}

// Enqueue accepts a broadcast frame for transmission.
func (m *EDCA) Enqueue(f Frame) error {
	if !f.AC.Valid() || f.Bits <= 0 {
		return fmt.Errorf("%w: ac=%v bits=%d", ErrBadFrame, f.AC, f.Bits)
	}
	st := &m.acs[f.AC-1]
	if st.count >= m.maxQueue {
		m.stats.DroppedQueueFull++
		return ErrQueueFull
	}
	st.push(f)
	m.stats.Enqueued++
	// A frame arriving to a busy medium must draw a backoff.
	if m.busy && st.backoff < 0 {
		m.drawBackoff(f.AC)
	}
	m.kick()
	return nil
}

// ChannelBusy notifies the MAC that carrier sense went busy.
func (m *EDCA) ChannelBusy() {
	if m.busy {
		return
	}
	m.busy = true
	if m.attempt != 0 {
		m.interruptAttempt()
	}
}

// ChannelIdle notifies the MAC that carrier sense went idle.
func (m *EDCA) ChannelIdle() {
	if !m.busy {
		return
	}
	m.busy = false
	m.kick()
}

// Busy reports the carrier-sense state.
func (m *EDCA) Busy() bool { return m.busy }

// TxDone notifies the MAC that its own transmission completed on the air.
func (m *EDCA) TxDone() {
	if !m.transmitting {
		return
	}
	m.transmitting = false
	m.kick()
}

// Transmitting reports whether the station is currently on air.
func (m *EDCA) Transmitting() bool { return m.transmitting }

// drawBackoff draws a fresh uniform backoff in [0, CWmin] for the AC.
// Broadcast frames are never retransmitted, so the window never doubles.
func (m *EDCA) drawBackoff(ac AccessCategory) {
	st := &m.acs[ac-1]
	st.backoff = m.rng.IntN(ac.Params().CWmin + 1)
	m.stats.BackoffsDrawn++
}

// interruptAttempt cancels the pending attempt and credits elapsed
// backoff slots, freezing the remainder per 802.11 backoff rules.
func (m *EDCA) interruptAttempt() {
	m.k.Cancel(m.attempt)
	m.attempt = 0
	m.stats.BusyDeferrals++
	st := &m.acs[m.deferAC-1]
	if st.backoff < 0 {
		// Immediate access was interrupted: draw a backoff for the retry.
		m.drawBackoff(m.deferAC)
		return
	}
	elapsed := m.k.Now().Sub(m.deferStart) - m.deferAC.AIFS()
	if elapsed > 0 {
		slots := int(elapsed / SlotTime)
		if slots > st.backoff {
			slots = st.backoff
		}
		st.backoff -= slots
	}
}

// nextAC picks the highest-priority non-empty access category. Internal
// contention resolution: when several ACs are ready the higher class
// wins, matching EDCA's internal-collision rule for a single station.
func (m *EDCA) nextAC() (AccessCategory, bool) {
	for ac := ACVoice; ac >= ACBackground; ac-- {
		if m.acs[ac-1].count > 0 {
			return ac, true
		}
	}
	return 0, false
}

// kick (re)schedules the next transmission attempt if possible.
func (m *EDCA) kick() {
	if m.transmitting || m.busy || m.attempt != 0 {
		return
	}
	ac, ok := m.nextAC()
	if !ok {
		return
	}
	st := &m.acs[ac-1]
	wait := ac.AIFS()
	if st.backoff > 0 {
		wait += des.Time(st.backoff) * SlotTime
	}
	start := m.k.Now().Add(wait)
	air := m.airtime(st.front().Bits)
	if !m.sched.CanTransmit(start, air) {
		opp := m.sched.NextTxOpportunity(start, air)
		if opp == des.MaxTime {
			// Frame can never fit a CCH window: drop it.
			st.pop()
			m.kick()
			return
		}
		// Re-contend from the window start with a fresh AIFS.
		start = opp.Add(ac.AIFS())
		if st.backoff > 0 {
			start = start.Add(des.Time(st.backoff) * SlotTime)
		}
	}
	m.deferAC = ac
	m.deferStart = m.k.Now()
	m.attempt = m.k.ScheduleAt(start, m.txStartFn)
}

// txStart fires when AIFS+backoff completed with an idle medium.
func (m *EDCA) txStart() {
	m.attempt = 0
	st := &m.acs[m.deferAC-1]
	if st.count == 0 {
		return
	}
	f := st.pop()
	st.backoff = -1
	m.transmitting = true
	m.stats.Sent++
	m.transmit(f)
	// Post-transmission backoff so back-to-back frames re-contend.
	if st.count > 0 {
		m.drawBackoff(m.deferAC)
	}
}
