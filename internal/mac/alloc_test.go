package mac

import (
	"testing"

	"comfase/internal/msg"
	"comfase/internal/sim/des"
	"comfase/internal/sim/rng"
	"comfase/internal/wave1609"
)

// allocHarness wires an EDCA entity to a no-op medium for the
// enqueue/dequeue allocation measurements.
func allocHarness(tb testing.TB) (*des.Kernel, *EDCA) {
	tb.Helper()
	k := des.NewKernel()
	// txDone is bound once, like the real radio's txDoneFn, so the fake
	// medium does not allocate a method value per transmission.
	var txDone des.Handler
	m, err := New(Config{
		Kernel:   k,
		RNG:      rng.New(1, "mac-alloc"),
		Schedule: wave1609.NewSchedule(wave1609.AccessContinuous),
		Airtime:  func(int) des.Time { return 80 * des.Microsecond },
		Transmit: func(Frame) { k.ScheduleAfter(80*des.Microsecond, txDone) },
	})
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	txDone = m.TxDone
	return k, m
}

// beaconFrame builds a beacon-carrying frame the way the platoon app
// does: inline beacon, no boxed payload.
func beaconFrame(seq uint64) Frame {
	return Frame{
		Seq: seq, Src: "v1", Bits: 424, AC: ACVideo,
		Beacon:    msg.Beacon{Source: "v1", Seq: seq, Pos: 12.5, Speed: 25},
		HasBeacon: true,
	}
}

// TestEDCAEnqueueZeroAllocs pins the steady-state enqueue/transmit cycle
// at zero allocations per frame: the ring-buffer queues must never
// regrow once built.
func TestEDCAEnqueueZeroAllocs(t *testing.T) {
	k, m := allocHarness(t)
	var seq uint64
	cycle := func() {
		seq++
		if err := m.Enqueue(beaconFrame(seq)); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	for i := 0; i < 16; i++ { // warm-up: kernel slab and queue rings
		cycle()
	}
	if allocs := testing.AllocsPerRun(1000, cycle); allocs != 0 {
		t.Errorf("enqueue/transmit allocs/op = %v, want 0", allocs)
	}
}

// TestEDCAEnqueueFullQueueZeroAllocs pins the drop path too: rejecting a
// frame on a full ring must not allocate either.
func TestEDCAEnqueueFullQueueZeroAllocs(t *testing.T) {
	_, m := allocHarness(t)
	// Fill the AC_VI ring without draining (no kernel run).
	var seq uint64
	for {
		seq++
		if err := m.Enqueue(beaconFrame(seq)); err != nil {
			break
		}
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		seq++
		_ = m.Enqueue(beaconFrame(seq))
	}); allocs != 0 {
		t.Errorf("full-queue drop allocs/op = %v, want 0", allocs)
	}
}

// BenchmarkEDCAEnqueue measures one enqueue/contention/transmit cycle
// through the ring-buffer queues.
func BenchmarkEDCAEnqueue(b *testing.B) {
	k, m := allocHarness(b)
	var seq uint64
	for i := 0; i < 16; i++ {
		seq++
		if err := m.Enqueue(beaconFrame(seq)); err != nil {
			b.Fatalf("Enqueue: %v", err)
		}
		if err := k.Run(); err != nil {
			b.Fatalf("Run: %v", err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq++
		if err := m.Enqueue(beaconFrame(seq)); err != nil {
			b.Fatalf("Enqueue: %v", err)
		}
		if err := k.Run(); err != nil {
			b.Fatalf("Run: %v", err)
		}
	}
}
