// Package geo provides the 2-D geometry primitives shared by the traffic
// simulator (vehicle positions along lanes) and the wireless channel
// models (inter-antenna distance, free-space path loss).
package geo

import "math"

// Vec is a 2-D vector / point in metres. X grows along the road's driving
// direction, Y across lanes.
type Vec struct {
	X float64
	Y float64
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{X: v.X + w.X, Y: v.Y + w.Y} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{X: v.X - w.X, Y: v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{X: v.X * s, Y: v.Y * s} }

// Dot returns the dot product of v and w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Len returns the Euclidean norm of v.
func (v Vec) Len() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between points v and w.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Len() }

// Clamp limits x to [lo, hi]. It is widely used for actuator and speed
// limits, hence it lives with the shared geometry helpers.
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// NearlyEqual reports whether a and b differ by at most eps.
func NearlyEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}
