package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecArithmetic(t *testing.T) {
	a := Vec{X: 1, Y: 2}
	b := Vec{X: 3, Y: -4}
	if got := a.Add(b); got != (Vec{X: 4, Y: -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec{X: -2, Y: 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec{X: 2, Y: 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
}

func TestVecLenDist(t *testing.T) {
	v := Vec{X: 3, Y: 4}
	if got := v.Len(); got != 5 {
		t.Errorf("Len = %v, want 5", got)
	}
	if got := (Vec{X: 1, Y: 1}).Dist(Vec{X: 4, Y: 5}); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if anyNaNInf(ax, ay, bx, by) {
			return true
		}
		a, b := Vec{X: ax, Y: ay}, Vec{X: bx, Y: by}
		return a.Dist(b) == b.Dist(a) && a.Dist(a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Constrain to a sane range to avoid float blow-ups.
		norm := func(x float64) float64 { return math.Mod(x, 1e6) }
		if anyNaNInf(ax, ay, bx, by, cx, cy) {
			return true
		}
		a := Vec{X: norm(ax), Y: norm(ay)}
		b := Vec{X: norm(bx), Y: norm(by)}
		c := Vec{X: norm(cx), Y: norm(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		name      string
		x, lo, hi float64
		want      float64
	}{
		{name: "inside", x: 5, lo: 0, hi: 10, want: 5},
		{name: "below", x: -3, lo: 0, hi: 10, want: 0},
		{name: "above", x: 15, lo: 0, hi: 10, want: 10},
		{name: "at low edge", x: 0, lo: 0, hi: 10, want: 0},
		{name: "at high edge", x: 10, lo: 0, hi: 10, want: 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
				t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
			}
		})
	}
}

func TestNearlyEqual(t *testing.T) {
	if !NearlyEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("NearlyEqual too strict")
	}
	if NearlyEqual(1.0, 1.1, 1e-9) {
		t.Error("NearlyEqual too lax")
	}
}

func anyNaNInf(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
