// Package des implements the deterministic discrete-event simulation
// kernel that underpins every ComFASE-Go simulation. It plays the role
// OMNeT++ plays in the original ComFASE stack: an ordered event queue, a
// monotone simulation clock, and a scheduling API used by the traffic,
// network and platooning modules.
//
// Determinism is a hard requirement (the ComFASE methodology compares an
// attack run against a golden run, so any nondeterminism would show up as
// spurious behavioural deviation). The kernel therefore:
//
//   - represents simulation time as integer nanoseconds (no float drift),
//   - breaks ties between simultaneous events by (priority, insertion
//     sequence), giving bit-for-bit reproducible schedules, and
//   - performs no I/O and spawns no goroutines.
package des

import (
	"fmt"
	"math"
	"time"
)

// Time is a simulation time stamp in nanoseconds since the start of the
// simulation. It is deliberately a distinct type from time.Duration so
// that wall-clock durations and simulation instants cannot be mixed up by
// accident, but it uses the same resolution, so conversion is loss-free.
type Time int64

// Common simulation time constants.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second

	// MaxTime is the largest representable simulation instant. It is used
	// as the "never" sentinel for disabled timers.
	MaxTime Time = math.MaxInt64
)

// FromSeconds converts a floating-point number of seconds to a Time,
// rounding to the nearest nanosecond.
func FromSeconds(s float64) Time {
	return Time(math.Round(s * 1e9))
}

// FromDuration converts a wall-clock duration to a simulation time span.
func FromDuration(d time.Duration) Time {
	return Time(d.Nanoseconds())
}

// Seconds reports the time stamp as a floating-point number of seconds.
func (t Time) Seconds() float64 {
	return float64(t) / 1e9
}

// Duration reports the time stamp as a time.Duration span from t=0.
func (t Time) Duration() time.Duration {
	return time.Duration(t)
}

// Add returns t shifted by the given span. It saturates at MaxTime rather
// than wrapping, so "schedule far in the future" arithmetic is safe.
func (t Time) Add(d Time) Time {
	if d > 0 && t > MaxTime-d {
		return MaxTime
	}
	if d < 0 && t < math.MinInt64-d {
		return Time(math.MinInt64)
	}
	return t + d
}

// Sub returns the span t-u.
func (t Time) Sub(u Time) Time {
	return t - u
}

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// String renders the time stamp in seconds with nanosecond precision,
// e.g. "17.2s" or "0.0001s".
func (t Time) String() string {
	if t == MaxTime {
		return "+inf"
	}
	return fmt.Sprintf("%gs", t.Seconds())
}
