package des

import (
	"errors"
	"fmt"
)

// ErrForeignState is returned by Restore when the KernelState was
// captured from a different kernel. Handlers are closures into the
// owning workspace's object graph, so a snapshot is only meaningful
// in-place on the kernel that produced it.
var ErrForeignState = errors.New("des: kernel state belongs to a different kernel")

// KernelState is a restorable snapshot of a Kernel: the slab (including
// handler references), freelist, heap order, generation counters, clock,
// sequence counter and executed-event count. It is the kernel half of a
// scenario checkpoint.
//
// A KernelState is bound to the kernel that filled it: Snapshot records
// the owner and Restore refuses state from any other kernel, because the
// stored handlers are closures into that kernel's workspace. The zero
// value is ready to use; buffers grow on first Snapshot and are reused
// afterwards, so steady-state Snapshot/Restore cycles allocate nothing.
type KernelState struct {
	owner      *Kernel
	now        Time
	nextSeq    uint64
	executed   uint64
	sinceCheck uint64
	slab       []event
	free       []int32
	heap       []int32
}

// Owner returns the kernel this state was captured from (nil before the
// first Snapshot).
func (s *KernelState) Owner() *Kernel { return s.owner }

// Snapshot copies the kernel's complete scheduling state into s,
// reusing s's buffers. The interrupt check, poll granularity and event
// budget are runtime knobs, not simulation state: they are deliberately
// NOT captured, so the caller re-applies them per run (exactly like the
// fresh-build path) before calling Restore.
func (k *Kernel) Snapshot(into *KernelState) {
	if k.m != nil {
		k.m.Snapshots.Inc()
	}
	into.owner = k
	into.now = k.now
	into.nextSeq = k.nextSeq
	into.executed = k.executed
	into.sinceCheck = k.sinceCheck
	into.slab = append(into.slab[:0], k.slab...)
	into.free = append(into.free[:0], k.free...)
	into.heap = append(into.heap[:0], k.heap...)
}

// Restore rewinds the kernel to the snapshot: clock, sequence counter,
// executed count, slab contents (generations included) and heap order
// all return to their captured values, so a restored kernel replays the
// exact event sequence a fresh run would produce from that point.
//
// Restore is only valid in-place on the kernel that produced the state
// (ErrForeignState otherwise). Slots allocated after the snapshot vanish;
// EventIDs issued after the snapshot become permanently stale (the slot
// range check or the restored generation rejects them), and IDs that were
// live at snapshot time validate again. Callers must not retain
// post-snapshot EventIDs anywhere outside state that is itself restored.
//
// The interrupt check, poll granularity and event budget are left
// untouched except for the poll phase (sinceCheck), which is restored so
// budget and cancellation abort points stay deterministic across the
// checkpointed and fresh paths. Re-apply the runtime knobs BEFORE calling
// Restore: SetInterruptCheck zeroes the poll phase.
func (k *Kernel) Restore(from *KernelState) error {
	if from.owner == nil {
		return errors.New("des: restore from empty kernel state")
	}
	if from.owner != k {
		return fmt.Errorf("%w", ErrForeignState)
	}
	if k.m != nil {
		k.m.Restores.Inc()
		// Rewinding executed below the flushed watermark must not make
		// the next flush delta negative: the prefix's events were already
		// reported, so reporting resumes from the restored count.
		if k.reported > from.executed {
			k.reported = from.executed
		}
	}
	k.now = from.now
	k.nextSeq = from.nextSeq
	k.executed = from.executed
	k.sinceCheck = from.sinceCheck
	k.stopped = false
	k.slab = append(k.slab[:0], from.slab...)
	k.free = append(k.free[:0], from.free...)
	k.heap = append(k.heap[:0], from.heap...)
	return nil
}

// TickerState is a restorable snapshot of a Ticker's mutable state (the
// pending event ID and running flag); configuration fields are stable
// across a checkpointed group and are not captured.
type TickerState struct {
	Next    EventID
	Running bool
}

// SaveState captures the ticker's mutable state.
func (t *Ticker) SaveState() TickerState {
	return TickerState{Next: t.next, Running: t.running}
}

// LoadState restores state captured by SaveState. Only meaningful
// together with a Kernel.Restore to the matching snapshot: the saved
// event ID validates again once the kernel's generations are rewound.
func (t *Ticker) LoadState(s TickerState) {
	t.next = s.Next
	t.running = s.Running
}
