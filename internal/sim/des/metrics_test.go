package des

import (
	"testing"

	"comfase/internal/obs"
)

// TestKernelMetricsFlushAtRunBoundaries pins the delta-flush contract:
// the Events counter advances only when Run/RunUntil return, matches the
// kernel's own executed count exactly, and stays correct across the
// checkpoint fork cycle (snapshot, run, restore, run again) — forked
// re-execution is counted as new work while the shared prefix is counted
// once.
func TestKernelMetricsFlushAtRunBoundaries(t *testing.T) {
	reg := obs.NewRegistry()
	m := &Metrics{
		Events:    reg.Counter("kernel.events_executed"),
		Snapshots: reg.Counter("kernel.snapshots"),
		Restores:  reg.Counter("kernel.restores"),
	}
	k := NewKernel()
	k.SetMetrics(m)

	for i := 1; i <= 3; i++ {
		k.ScheduleAt(Time(i), func() {})
	}
	if err := k.RunUntil(3); err != nil {
		t.Fatalf("prefix run: %v", err)
	}
	if got := m.Events.Load(); got != 3 {
		t.Fatalf("after prefix: events = %d, want 3", got)
	}

	// Fork point: two pending events beyond the snapshot.
	k.ScheduleAt(4, func() {})
	k.ScheduleAt(5, func() {})
	var state KernelState
	k.Snapshot(&state)
	if got := m.Snapshots.Load(); got != 1 {
		t.Fatalf("snapshots = %d, want 1", got)
	}

	if err := k.RunUntil(10); err != nil {
		t.Fatalf("first fork: %v", err)
	}
	if got := m.Events.Load(); got != 5 {
		t.Fatalf("after first fork: events = %d, want 5", got)
	}

	if err := k.Restore(&state); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := m.Restores.Load(); got != 1 {
		t.Fatalf("restores = %d, want 1", got)
	}
	if err := k.RunUntil(10); err != nil {
		t.Fatalf("second fork: %v", err)
	}
	// 3 prefix + 2 per fork: the replayed sibling counts as new work.
	if got := m.Events.Load(); got != 7 {
		t.Fatalf("after second fork: events = %d, want 7", got)
	}

	// Reset detaches the metrics like every other runtime knob.
	k.Reset()
	k.ScheduleAt(1, func() {})
	if err := k.Run(); err != nil {
		t.Fatalf("post-reset run: %v", err)
	}
	if got := m.Events.Load(); got != 7 {
		t.Fatalf("post-reset run leaked into detached metrics: events = %d, want 7", got)
	}
}

// TestKernelSetMetricsMidLife pins that attaching metrics to a kernel
// with history reports only subsequent events.
func TestKernelSetMetricsMidLife(t *testing.T) {
	k := NewKernel()
	k.ScheduleAt(1, func() {})
	if err := k.Run(); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	reg := obs.NewRegistry()
	m := &Metrics{Events: reg.Counter("events")}
	k.SetMetrics(m)
	k.ScheduleAt(2, func() {})
	k.ScheduleAt(3, func() {})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := m.Events.Load(); got != 2 {
		t.Fatalf("events = %d, want 2 (pre-attach history must not flush)", got)
	}
}
