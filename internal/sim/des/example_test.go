package des_test

import (
	"fmt"

	"comfase/internal/sim/des"
)

// A minimal discrete-event program: two events and a mid-run phase
// boundary, the same RunUntil pattern ComFASE's Algorithm 1 uses for its
// three SimUntil phases.
func ExampleKernel_RunUntil() {
	k := des.NewKernel()
	k.ScheduleAt(2*des.Second, func() { fmt.Println("beacon at", k.Now()) })
	k.ScheduleAt(5*des.Second, func() { fmt.Println("attack at", k.Now()) })

	_ = k.RunUntil(3 * des.Second) // phase 1: before the attack window
	fmt.Println("phase boundary at", k.Now())
	_ = k.RunUntil(10 * des.Second) // phase 2: the rest

	// Output:
	// beacon at 2s
	// phase boundary at 3s
	// attack at 5s
}

func ExampleTicker() {
	k := des.NewKernel()
	n := 0
	t := des.NewTicker(k, 100*des.Millisecond, des.PriorityNormal, func() {
		n++
	})
	t.Start(100 * des.Millisecond)
	_ = k.RunUntil(1 * des.Second)
	fmt.Printf("%d ticks in 1 s at 10 Hz\n", n)
	// Output:
	// 10 ticks in 1 s at 10 Hz
}

func ExampleFromSeconds() {
	fmt.Println(des.FromSeconds(17.2))
	fmt.Println(des.FromSeconds(0.1) == 100*des.Millisecond)
	// Output:
	// 17.2s
	// true
}
