package des

import "testing"

// FuzzKernelSchedule feeds the kernel arbitrary interleavings of
// schedule/cancel/run-until operations encoded as a byte program and
// checks the core invariants: no panics, a monotone clock, and an
// executed-count that never exceeds the number of scheduled events.
func FuzzKernelSchedule(f *testing.F) {
	f.Add([]byte{0, 10, 1, 0, 2, 20})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 2, 255})
	f.Add([]byte{2, 0, 0, 5, 1, 9})
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 256 {
			program = program[:256]
		}
		k := NewKernel()
		var ids []EventID
		scheduled := 0
		lastNow := k.Now()
		for i := 0; i+1 < len(program); i += 2 {
			op, arg := program[i]%3, Time(program[i+1])*Millisecond
			switch op {
			case 0: // schedule
				ids = append(ids, k.ScheduleAt(arg, func() {}))
				scheduled++
			case 1: // cancel a (possibly stale) id
				if len(ids) > 0 {
					k.Cancel(ids[int(program[i+1])%len(ids)])
				}
			case 2: // run until arg past now
				if err := k.RunUntil(k.Now().Add(arg)); err != nil {
					t.Fatalf("RunUntil: %v", err)
				}
			}
			if k.Now() < lastNow {
				t.Fatalf("clock went backwards: %v -> %v", lastNow, k.Now())
			}
			lastNow = k.Now()
		}
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if k.Executed() > uint64(scheduled) {
			t.Fatalf("executed %d > scheduled %d", k.Executed(), scheduled)
		}
	})
}
