package des

import "testing"

// FuzzKernelSchedule feeds the kernel arbitrary interleavings of
// schedule/cancel/run-until/reset operations encoded as a byte program
// and checks the core invariants: no panics, a clock that is monotone
// between resets, an executed-count that never exceeds the number of
// scheduled events, and stale pre-reset IDs that never cancel post-reset
// events.
func FuzzKernelSchedule(f *testing.F) {
	f.Add([]byte{0, 10, 1, 0, 2, 20})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 2, 255})
	f.Add([]byte{2, 0, 0, 5, 1, 9})
	f.Add([]byte{0, 10, 3, 0, 0, 10, 1, 0, 2, 20})
	f.Add([]byte{0, 7, 0, 7, 3, 1, 3, 2, 0, 7, 2, 9})
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 256 {
			program = program[:256]
		}
		k := NewKernel()
		var ids []EventID   // IDs issued since the last reset
		var stale []EventID // IDs invalidated by a reset
		scheduled := 0      // events scheduled since the last reset
		lastNow := k.Now()
		for i := 0; i+1 < len(program); i += 2 {
			op, arg := program[i]%4, Time(program[i+1])*Millisecond
			switch op {
			case 0: // schedule
				ids = append(ids, k.ScheduleAt(arg, func() {}))
				scheduled++
			case 1: // cancel a (possibly stale) id
				if len(ids) > 0 {
					k.Cancel(ids[int(program[i+1])%len(ids)])
				}
			case 2: // run until arg past now
				if err := k.RunUntil(k.Now().Add(arg)); err != nil {
					t.Fatalf("RunUntil: %v", err)
				}
			case 3: // reset
				k.Reset()
				if k.Now() != 0 || k.Pending() != 0 || k.Executed() != 0 {
					t.Fatalf("Reset left state: now=%v pending=%d executed=%d",
						k.Now(), k.Pending(), k.Executed())
				}
				stale = append(stale, ids...)
				ids = ids[:0]
				scheduled = 0
				lastNow = 0
			}
			if k.Now() < lastNow {
				t.Fatalf("clock went backwards: %v -> %v", lastNow, k.Now())
			}
			lastNow = k.Now()
		}
		// Stale IDs from before any reset must be dead, no matter how the
		// slots were recycled since.
		for _, id := range stale {
			if k.Cancel(id) {
				t.Fatalf("stale pre-reset ID %v canceled a live event", id)
			}
		}
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if k.Executed() > uint64(scheduled) {
			t.Fatalf("executed %d > scheduled %d", k.Executed(), scheduled)
		}
	})
}
