package des

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelRunsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, at := range []Time{5 * Second, Second, 3 * Second, 2 * Second, 4 * Second} {
		at := at
		k.ScheduleAt(at, func() { got = append(got, k.Now()) })
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{Second, 2 * Second, 3 * Second, 4 * Second, 5 * Second}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKernelFIFOWithinSameTime(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.ScheduleAt(Second, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v not FIFO", order)
		}
	}
}

func TestKernelPriorityOrdering(t *testing.T) {
	k := NewKernel()
	var order []string
	k.ScheduleAtPrio(Second, PriorityLast, func() { order = append(order, "last") })
	k.ScheduleAtPrio(Second, PriorityNormal, func() { order = append(order, "normal") })
	k.ScheduleAtPrio(Second, PriorityFirst, func() { order = append(order, "first") })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"first", "normal", "last"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestKernelScheduleInPastClampsToNow(t *testing.T) {
	k := NewKernel()
	var firedAt Time = -1
	k.ScheduleAt(10*Second, func() {
		k.ScheduleAt(Second, func() { firedAt = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if firedAt != 10*Second {
		t.Errorf("past event fired at %v, want clamp to 10s", firedAt)
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	id := k.ScheduleAt(Second, func() { fired = true })
	if !k.Cancel(id) {
		t.Fatal("Cancel reported not pending")
	}
	if k.Cancel(id) {
		t.Fatal("double Cancel reported pending")
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("canceled event fired")
	}
	if k.Cancel(EventID(999)) {
		t.Error("Cancel of unknown id reported pending")
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, at := range []Time{Second, 2 * Second, 3 * Second} {
		k.ScheduleAt(at, func() { fired = append(fired, k.Now()) })
	}
	if err := k.RunUntil(2 * Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	// Boundary events fire (inclusive semantics).
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2 (inclusive boundary)", len(fired))
	}
	if k.Now() != 2*Second {
		t.Errorf("Now = %v, want 2s", k.Now())
	}
	if err := k.RunUntil(10 * Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fired) != 3 {
		t.Errorf("fired %d events after second phase, want 3", len(fired))
	}
	if k.Now() != 10*Second {
		t.Errorf("Now = %v, want clock advanced to 10s on empty queue", k.Now())
	}
}

func TestKernelRunUntilPastErrors(t *testing.T) {
	k := NewKernel()
	k.ScheduleAt(5*Second, func() {})
	if err := k.RunUntil(5 * Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if err := k.RunUntil(Second); err == nil {
		t.Error("RunUntil in the past did not error")
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.ScheduleAt(Time(i)*Second, func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	err := k.Run()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	if k.Pending() == 0 {
		t.Error("pending events discarded by Stop")
	}
}

func TestKernelNextEventAt(t *testing.T) {
	k := NewKernel()
	if got := k.NextEventAt(); got != MaxTime {
		t.Errorf("empty NextEventAt = %v, want MaxTime", got)
	}
	id := k.ScheduleAt(3*Second, func() {})
	k.ScheduleAt(7*Second, func() {})
	if got := k.NextEventAt(); got != 3*Second {
		t.Errorf("NextEventAt = %v, want 3s", got)
	}
	k.Cancel(id)
	if got := k.NextEventAt(); got != 7*Second {
		t.Errorf("NextEventAt after cancel = %v, want 7s", got)
	}
}

func TestKernelScheduleAfter(t *testing.T) {
	k := NewKernel()
	var firedAt Time
	k.ScheduleAt(2*Second, func() {
		k.ScheduleAfter(500*Millisecond, func() { firedAt = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if firedAt != 2500*Millisecond {
		t.Errorf("fired at %v, want 2.5s", firedAt)
	}
}

// Property: for any set of schedule times, events are delivered in
// nondecreasing time order and the count matches.
func TestKernelDeliveryOrderProperty(t *testing.T) {
	f := func(times []uint32) bool {
		k := NewKernel()
		var fired []Time
		for _, ti := range times {
			k.ScheduleAt(Time(ti), func() { fired = append(fired, k.Now()) })
		}
		if err := k.Run(); err != nil {
			return false
		}
		if len(fired) != len(times) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: two kernels given the same schedule produce identical
// delivery sequences (determinism).
func TestKernelDeterminismProperty(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		var fired []Time
		for i := 0; i < 500; i++ {
			k.ScheduleAt(Time(rng.Intn(100))*Millisecond, func() {
				fired = append(fired, k.Now())
			})
		}
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return fired
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestKernelExecutedCount(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 5; i++ {
		k.ScheduleAt(Time(i), func() {})
	}
	id := k.ScheduleAt(10, func() {})
	k.Cancel(id)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if k.Executed() != 5 {
		t.Errorf("Executed = %d, want 5 (canceled events do not count)", k.Executed())
	}
}

func TestTickerPeriodicFiring(t *testing.T) {
	k := NewKernel()
	var fires []Time
	tk := NewTicker(k, 100*Millisecond, PriorityNormal, func() {
		fires = append(fires, k.Now())
	})
	tk.Start(Second)
	if err := k.RunUntil(1300 * Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	want := []Time{Second, 1100 * Millisecond, 1200 * Millisecond, 1300 * Millisecond}
	if len(fires) != len(want) {
		t.Fatalf("fired %d times (%v), want %d", len(fires), fires, len(want))
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Errorf("fire %d at %v, want %v", i, fires[i], want[i])
		}
	}
}

func TestTickerStop(t *testing.T) {
	k := NewKernel()
	count := 0
	var tk *Ticker
	tk = NewTicker(k, 100*Millisecond, PriorityNormal, func() {
		count++
		if count == 2 {
			tk.StopTicker()
		}
	})
	tk.Start(0)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
	if tk.Running() {
		t.Error("ticker still running after StopTicker")
	}
}

func TestTickerRestartRephases(t *testing.T) {
	k := NewKernel()
	var fires []Time
	tk := NewTicker(k, Second, PriorityNormal, func() { fires = append(fires, k.Now()) })
	tk.Start(Second)
	k.ScheduleAt(1500*Millisecond, func() { tk.Start(2200 * Millisecond) })
	if err := k.RunUntil(3300 * Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	want := []Time{Second, 2200 * Millisecond, 3200 * Millisecond}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Errorf("fires = %v, want %v", fires, want)
		}
	}
}

func TestTickerZeroPeriodClamped(t *testing.T) {
	tk := NewTicker(NewKernel(), 0, PriorityNormal, func() {})
	if tk.Period() <= 0 {
		t.Error("zero period not clamped to positive")
	}
}

func TestKernelInterruptCheckAborts(t *testing.T) {
	k := NewKernel()
	var fired int
	var reschedule func()
	reschedule = func() {
		fired++
		k.ScheduleAfter(Millisecond, reschedule)
	}
	k.ScheduleAfter(Millisecond, reschedule)

	errStop := errors.New("interrupted")
	polls := 0
	k.SetInterruptCheck(8, func() error {
		polls++
		if polls >= 3 {
			return errStop
		}
		return nil
	})
	err := k.RunUntil(Second)
	if !errors.Is(err, errStop) {
		t.Fatalf("RunUntil = %v, want %v", err, errStop)
	}
	// Three polls at granularity 8 means exactly 24 events executed.
	if fired != 24 {
		t.Errorf("fired = %d, want 24 (3 polls x every 8)", fired)
	}
	if k.Now() >= Second {
		t.Errorf("clock advanced to %v despite interrupt", k.Now())
	}
	// The run is resumable: clearing the check lets it complete.
	k.SetInterruptCheck(0, nil)
	if err := k.RunUntil(Second); err != nil {
		t.Fatalf("resumed RunUntil: %v", err)
	}
	if k.Now() != Second {
		t.Errorf("clock = %v, want %v", k.Now(), Second)
	}
}

func TestKernelInterruptCheckZeroEveryDefaults(t *testing.T) {
	k := NewKernel()
	for i := 0; i < DefaultInterruptEvery+10; i++ {
		k.ScheduleAt(Time(i)*Microsecond, func() {})
	}
	polls := 0
	k.SetInterruptCheck(0, func() error { polls++; return nil })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if polls != 1 {
		t.Errorf("polls = %d, want 1 (default granularity %d)", polls, DefaultInterruptEvery)
	}
}

// TestKernelEventBudget checks the deterministic runaway-loop watchdog: a
// self-rescheduling event chain that would run forever is aborted with
// ErrBudgetExceeded at exactly the same event count on every run.
func TestKernelEventBudget(t *testing.T) {
	run := func() (uint64, error) {
		k := NewKernel()
		var loop func()
		loop = func() { k.ScheduleAfter(Microsecond, loop) }
		k.ScheduleAfter(Microsecond, loop)
		k.SetEventBudget(10_000)
		err := k.RunUntil(Minute)
		return k.Executed(), err
	}
	exec1, err1 := run()
	exec2, err2 := run()
	if !errors.Is(err1, ErrBudgetExceeded) {
		t.Fatalf("RunUntil = %v, want ErrBudgetExceeded", err1)
	}
	if !errors.Is(err2, ErrBudgetExceeded) || exec1 != exec2 {
		t.Errorf("budget abort not deterministic: %d/%v vs %d/%v", exec1, err1, exec2, err2)
	}
	// The abort lands on the first poll at or after the budget.
	if exec1 < 10_000 || exec1 > 10_000+DefaultInterruptEvery {
		t.Errorf("aborted after %d events, want within one poll of the 10000 budget", exec1)
	}
}

// TestKernelEventBudgetSharesInterruptCadence pins the budget check to the
// interrupt-poll granularity when an interrupt check is installed.
func TestKernelEventBudgetSharesInterruptCadence(t *testing.T) {
	k := NewKernel()
	var loop func()
	loop = func() { k.ScheduleAfter(Microsecond, loop) }
	k.ScheduleAfter(Microsecond, loop)
	k.SetInterruptCheck(8, func() error { return nil })
	k.SetEventBudget(20)
	if err := k.Run(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Run = %v, want ErrBudgetExceeded", err)
	}
	// Budget 20 at cadence 8: polls at 8, 16, 24 — abort at 24.
	if got := k.Executed(); got != 24 {
		t.Errorf("Executed = %d, want 24", got)
	}
}

// TestKernelBudgetUnderLimitIsTransparent verifies a generous budget never
// perturbs a bounded run, and that Reset clears the budget.
func TestKernelBudgetUnderLimitIsTransparent(t *testing.T) {
	k := NewKernel()
	fired := 0
	for i := 0; i < 100; i++ {
		k.ScheduleAt(Time(i)*Microsecond, func() { fired++ })
	}
	k.SetEventBudget(1_000_000)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 100 {
		t.Errorf("fired = %d, want 100", fired)
	}
	k.Reset()
	if k.EventBudget() != 0 {
		t.Errorf("Reset kept budget %d", k.EventBudget())
	}
}
