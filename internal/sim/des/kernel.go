package des

import (
	"errors"
	"fmt"
)

// Handler is the callback invoked when a scheduled event fires. It runs at
// the event's time stamp; Kernel.Now() reports that time stamp for the
// duration of the call.
type Handler func()

// Priority orders events that share the same time stamp: lower values run
// first. Within one (time, priority) bucket, events run in insertion
// order (FIFO), which keeps simulations deterministic.
type Priority int

// Well-known priorities. Most modules use PriorityNormal; the traffic
// stepper runs late in each tick so that all radio frames delivered "at"
// a step boundary are visible to the controllers evaluated in that step.
const (
	PriorityFirst  Priority = -100
	PriorityNormal Priority = 0
	PriorityLast   Priority = 100
)

// EventID identifies a scheduled event for cancellation. The zero value
// is never a valid ID.
//
// An ID packs the event's slab slot (upper 32 bits, biased by one) and
// the slot's generation counter (lower 32 bits). Cancel validates both,
// so a stale ID — the event fired, was canceled, or the kernel was Reset
// — can never affect the slot's current occupant. This replaces the old
// id->event map: schedule and cancel do no map traffic at all.
type EventID uint64

// makeEventID packs a slot index and generation into an EventID.
func makeEventID(slot int32, gen uint32) EventID {
	return EventID(uint64(slot)+1)<<32 | EventID(gen)
}

// split unpacks the ID. slot is -1 for the zero (invalid) ID.
func (id EventID) split() (slot int64, gen uint32) {
	return int64(id>>32) - 1, uint32(id)
}

// ErrStopped is returned by Run/RunUntil when the kernel was stopped via
// Stop before the time limit or queue exhaustion was reached.
var ErrStopped = errors.New("des: kernel stopped")

// ErrBudgetExceeded is returned (wrapped) by Run/RunUntil when the
// kernel's event budget (SetEventBudget) is exhausted — the deterministic
// watchdog that catches infinite event loops without relying on
// wall-clock timers.
var ErrBudgetExceeded = errors.New("des: event budget exceeded")

// DefaultInterruptEvery is the interrupt-poll granularity used when
// SetInterruptCheck is called with every == 0. At the paper scenario's
// event rate (~100k events per simulated minute) this bounds cancellation
// latency to a few milliseconds of wall-clock time while keeping the
// per-event cost of the hot loop at a single integer increment.
const DefaultInterruptEvery = 4096

// event is a slab slot. Cancellation is implemented by flagging: the
// entry stays in the heap and is recycled when popped. A slot is free
// (on the freelist), pending (in the heap) or canceled (in the heap,
// flagged); gen increments every time the slot is recycled, invalidating
// all previously issued IDs for it.
type event struct {
	at       Time
	prio     Priority
	seq      uint64 // insertion order, tie-break within (at, prio)
	gen      uint32
	canceled bool
	fn       Handler
}

// Kernel is a single-threaded discrete-event scheduler. The zero value is
// ready to use, but create kernels with NewKernel for symmetry with the
// rest of the stack. Kernels are not safe for concurrent use — all
// scheduling must happen from event handlers or from the goroutine
// driving Run/RunUntil, exactly as in OMNeT++.
//
// Event storage is a slab with a freelist: steady-state scheduling
// performs zero heap allocations (pinned by TestKernelScheduleZeroAllocs)
// because popped slots are recycled in place and the binary heap orders
// int32 slot indices, never boxed values.
type Kernel struct {
	now     Time
	slab    []event // slot storage; grows on demand, never shrinks
	free    []int32 // recycled slot indices (LIFO)
	heap    []int32 // min-heap of slots ordered by (at, prio, seq)
	nextSeq uint64
	stopped bool
	// executed counts delivered (non-canceled) events, exposed for
	// statistics and benchmarks.
	executed uint64

	// interrupt, when non-nil, is polled every checkEvery executed events
	// during Run/RunUntil; a non-nil return aborts the run with that
	// error. This is the cooperative-cancellation hook that lets a
	// context.Context stop a long simulation without per-event overhead.
	interrupt  func() error
	checkEvery uint64
	sinceCheck uint64
	// budget, when non-zero, bounds the number of delivered events per
	// run; it is enforced on the same poll cadence as the interrupt
	// check, so the hot loop pays nothing extra for it.
	budget uint64

	// m, when non-nil, receives event/snapshot/restore counts; reported
	// tracks how much of executed has been flushed into m.Events. Deltas
	// flush when Run/RunUntil return, never per event (see metrics.go).
	m        *Metrics
	reported uint64
}

// NewKernel returns an empty kernel with the clock at t=0.
func NewKernel() *Kernel { return &Kernel{} }

// Reset returns the kernel to its initial state — clock at t=0, no
// pending events, counters cleared, interrupt check and event budget
// removed — without
// releasing the slab, freelist or heap storage. A Reset kernel behaves
// exactly like a fresh NewKernel (same seq numbering, hence the same
// deterministic tie-breaking), which is what lets campaign workers reuse
// one kernel across thousands of experiments. Event IDs issued before the
// Reset are invalidated: every live slot's generation is bumped, so a
// stale Cancel can never hit a post-Reset event.
func (k *Kernel) Reset() {
	for _, slot := range k.heap {
		k.release(slot)
	}
	k.heap = k.heap[:0]
	k.now = 0
	k.nextSeq = 0
	k.executed = 0
	k.stopped = false
	k.interrupt = nil
	k.checkEvery = 0
	k.sinceCheck = 0
	k.budget = 0
	k.m = nil
	k.reported = 0
}

// Now reports the current simulation time. During an event handler this
// is the handler's scheduled time stamp.
func (k *Kernel) Now() Time { return k.now }

// Executed reports how many events have been delivered so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending reports how many events are queued, including canceled entries
// that have not been popped yet.
func (k *Kernel) Pending() int { return len(k.heap) }

// less orders the heap by (at, prio, seq).
func (k *Kernel) less(a, b int32) bool {
	ea, eb := &k.slab[a], &k.slab[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	if ea.prio != eb.prio {
		return ea.prio < eb.prio
	}
	return ea.seq < eb.seq
}

// heapPush inserts a slot into the heap.
func (k *Kernel) heapPush(slot int32) {
	k.heap = append(k.heap, slot)
	i := len(k.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !k.less(k.heap[i], k.heap[parent]) {
			break
		}
		k.heap[i], k.heap[parent] = k.heap[parent], k.heap[i]
		i = parent
	}
}

// heapPop removes and returns the root slot. The heap must be non-empty.
func (k *Kernel) heapPop() int32 {
	h := k.heap
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	k.heap = h[:n]
	k.siftDown(0)
	return root
}

// siftDown restores the heap property from index i downward.
func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && k.less(h[r], h[l]) {
			min = r
		}
		if !k.less(h[min], h[i]) {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// alloc takes a slot from the freelist or grows the slab.
func (k *Kernel) alloc() int32 {
	if n := len(k.free); n > 0 {
		slot := k.free[n-1]
		k.free = k.free[:n-1]
		return slot
	}
	k.slab = append(k.slab, event{})
	return int32(len(k.slab) - 1)
}

// release recycles a popped slot: the handler reference is dropped so the
// slab does not retain closures, and the generation bump invalidates all
// outstanding IDs for the slot.
func (k *Kernel) release(slot int32) {
	ev := &k.slab[slot]
	ev.fn = nil
	ev.canceled = false
	ev.gen++
	k.free = append(k.free, slot)
}

// ScheduleAt schedules fn to run at the absolute time at with normal
// priority. Scheduling in the past is clamped to Now: the event fires at
// the current time, after all already-queued events for that time.
func (k *Kernel) ScheduleAt(at Time, fn Handler) EventID {
	return k.ScheduleAtPrio(at, PriorityNormal, fn)
}

// ScheduleAtPrio schedules fn at time at with an explicit priority.
func (k *Kernel) ScheduleAtPrio(at Time, prio Priority, fn Handler) EventID {
	if at < k.now {
		at = k.now
	}
	slot := k.alloc()
	ev := &k.slab[slot]
	ev.at = at
	ev.prio = prio
	ev.seq = k.nextSeq
	ev.fn = fn
	k.nextSeq++
	k.heapPush(slot)
	return makeEventID(slot, ev.gen)
}

// ScheduleAfter schedules fn to run after the given delay relative to the
// current simulation time. Negative delays are clamped to zero.
func (k *Kernel) ScheduleAfter(delay Time, fn Handler) EventID {
	return k.ScheduleAt(k.now.Add(delay), fn)
}

// ScheduleAfterPrio schedules fn after delay with an explicit priority.
func (k *Kernel) ScheduleAfterPrio(delay Time, prio Priority, fn Handler) EventID {
	return k.ScheduleAtPrio(k.now.Add(delay), prio, fn)
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if it already fired, was canceled, never existed, or
// predates a Reset).
func (k *Kernel) Cancel(id EventID) bool {
	slot, gen := id.split()
	if slot < 0 || slot >= int64(len(k.slab)) {
		return false
	}
	ev := &k.slab[slot]
	if ev.gen != gen || ev.canceled || ev.fn == nil {
		return false
	}
	ev.canceled = true
	return true
}

// Stop makes the currently running Run/RunUntil return ErrStopped after
// the current handler completes. Pending events remain queued.
func (k *Kernel) Stop() { k.stopped = true }

// SetInterruptCheck installs fn as a cooperative interrupt, polled every
// `every` executed events during Run/RunUntil (every == 0 selects
// DefaultInterruptEvery). When fn returns a non-nil error the run aborts
// after the current handler completes and that error is returned; pending
// events remain queued, exactly as with Stop. A nil fn removes the check.
// Typical use wires a context.Context without per-event overhead:
//
//	k.SetInterruptCheck(0, func() error { return ctx.Err() })
func (k *Kernel) SetInterruptCheck(every uint64, fn func() error) {
	if fn == nil {
		k.interrupt = nil
		k.checkEvery = 0
		k.sinceCheck = 0
		return
	}
	if every == 0 {
		every = DefaultInterruptEvery
	}
	k.interrupt = fn
	k.checkEvery = every
	k.sinceCheck = 0
}

// SetEventBudget bounds the number of delivered events per run: once
// Executed() reaches max, Run/RunUntil abort with an error wrapping
// ErrBudgetExceeded. max == 0 removes the budget. The check shares the
// interrupt-poll cadence (SetInterruptCheck's granularity, or
// DefaultInterruptEvery when no interrupt check is installed), so for a
// fixed cadence the abort point is deterministic — the watchdog that
// catches a runaway event loop identically on every run, which
// wall-clock timers cannot.
func (k *Kernel) SetEventBudget(max uint64) {
	k.budget = max
}

// EventBudget reports the configured budget (0 = unlimited).
func (k *Kernel) EventBudget() uint64 { return k.budget }

// pollInterrupt counts executed events and invokes the budget and
// interrupt checks at the configured granularity.
func (k *Kernel) pollInterrupt() error {
	if k.interrupt == nil && k.budget == 0 {
		return nil
	}
	every := k.checkEvery
	if every == 0 {
		every = DefaultInterruptEvery
	}
	k.sinceCheck++
	if k.sinceCheck < every {
		return nil
	}
	k.sinceCheck = 0
	if k.budget != 0 && k.executed >= k.budget {
		return fmt.Errorf("des: %d events delivered (budget %d) at %v: %w",
			k.executed, k.budget, k.now, ErrBudgetExceeded)
	}
	if k.interrupt == nil {
		return nil
	}
	return k.interrupt()
}

// step pops and executes the next event. It reports false when the queue
// is exhausted. The slot is recycled before the handler runs, so a
// handler that schedules immediately reuses it (with a fresh generation).
func (k *Kernel) step() bool {
	for len(k.heap) > 0 {
		slot := k.heapPop()
		ev := &k.slab[slot]
		if ev.canceled {
			k.release(slot)
			continue
		}
		fn := ev.fn
		k.now = ev.at
		k.executed++
		k.release(slot)
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty, Stop is called, or the
// interrupt check (SetInterruptCheck) reports an error.
func (k *Kernel) Run() error {
	defer k.flushMetrics()
	k.stopped = false
	for !k.stopped {
		if !k.step() {
			return nil
		}
		if err := k.pollInterrupt(); err != nil {
			return err
		}
	}
	return ErrStopped
}

// RunUntil executes events with time stamps strictly before or at limit,
// then advances the clock to limit and returns. Events scheduled exactly
// at limit DO fire — this matches Algorithm 1's SimUntil semantics where
// the attack window [start, end] is inclusive of its boundaries. If the
// queue empties earlier, the clock still advances to limit. An interrupt
// check installed via SetInterruptCheck aborts the run with its error,
// leaving the clock at the last executed event so the caller can observe
// how far the run progressed.
func (k *Kernel) RunUntil(limit Time) error {
	if limit < k.now {
		return fmt.Errorf("des: RunUntil(%v) is in the past (now %v)", limit, k.now)
	}
	defer k.flushMetrics()
	k.stopped = false
	for !k.stopped {
		at, ok := k.peek()
		if !ok || at > limit {
			k.now = limit
			return nil
		}
		k.step()
		if err := k.pollInterrupt(); err != nil {
			return err
		}
	}
	return ErrStopped
}

// peek reports the time stamp of the next live event, discarding canceled
// entries along the way. ok is false when the queue is empty.
func (k *Kernel) peek() (at Time, ok bool) {
	for len(k.heap) > 0 {
		ev := &k.slab[k.heap[0]]
		if !ev.canceled {
			return ev.at, true
		}
		k.release(k.heapPop())
	}
	return 0, false
}

// NextEventAt reports the time stamp of the next live event, or MaxTime
// when the queue is empty.
func (k *Kernel) NextEventAt() Time {
	at, ok := k.peek()
	if !ok {
		return MaxTime
	}
	return at
}
