package des

import (
	"container/heap"
	"errors"
	"fmt"
)

// Handler is the callback invoked when a scheduled event fires. It runs at
// the event's time stamp; Kernel.Now() reports that time stamp for the
// duration of the call.
type Handler func()

// Priority orders events that share the same time stamp: lower values run
// first. Within one (time, priority) bucket, events run in insertion
// order (FIFO), which keeps simulations deterministic.
type Priority int

// Well-known priorities. Most modules use PriorityNormal; the traffic
// stepper runs late in each tick so that all radio frames delivered "at"
// a step boundary are visible to the controllers evaluated in that step.
const (
	PriorityFirst  Priority = -100
	PriorityNormal Priority = 0
	PriorityLast   Priority = 100
)

// EventID identifies a scheduled event for cancellation. The zero value
// is never a valid ID.
type EventID uint64

// ErrStopped is returned by Run/RunUntil when the kernel was stopped via
// Stop before the time limit or queue exhaustion was reached.
var ErrStopped = errors.New("des: kernel stopped")

// DefaultInterruptEvery is the interrupt-poll granularity used when
// SetInterruptCheck is called with every == 0. At the paper scenario's
// event rate (~100k events per simulated minute) this bounds cancellation
// latency to a few milliseconds of wall-clock time while keeping the
// per-event cost of the hot loop at a single integer increment.
const DefaultInterruptEvery = 4096

// event is a queue entry. Cancellation is implemented by flagging: the
// entry stays in the heap and is discarded when popped.
type event struct {
	at       Time
	prio     Priority
	seq      uint64 // insertion order, tie-break within (at, prio)
	id       EventID
	fn       Handler
	canceled bool
	index    int // heap index, maintained by eventQueue
}

// eventQueue is a binary min-heap of events ordered by (at, prio, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Kernel is a single-threaded discrete-event scheduler. The zero value is
// not usable; create kernels with NewKernel. Kernels are not safe for
// concurrent use — all scheduling must happen from event handlers or from
// the goroutine driving Run/RunUntil, exactly as in OMNeT++.
type Kernel struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	nextID  EventID
	byID    map[EventID]*event
	stopped bool
	// executed counts delivered (non-canceled) events, exposed for
	// statistics and benchmarks.
	executed uint64

	// interrupt, when non-nil, is polled every checkEvery executed events
	// during Run/RunUntil; a non-nil return aborts the run with that
	// error. This is the cooperative-cancellation hook that lets a
	// context.Context stop a long simulation without per-event overhead.
	interrupt  func() error
	checkEvery uint64
	sinceCheck uint64
}

// NewKernel returns an empty kernel with the clock at t=0.
func NewKernel() *Kernel {
	return &Kernel{
		byID:   make(map[EventID]*event, 64),
		nextID: 1,
	}
}

// Now reports the current simulation time. During an event handler this
// is the handler's scheduled time stamp.
func (k *Kernel) Now() Time { return k.now }

// Executed reports how many events have been delivered so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending reports how many events are queued, including canceled entries
// that have not been popped yet.
func (k *Kernel) Pending() int { return len(k.queue) }

// ScheduleAt schedules fn to run at the absolute time at with normal
// priority. Scheduling in the past is clamped to Now: the event fires at
// the current time, after all already-queued events for that time.
func (k *Kernel) ScheduleAt(at Time, fn Handler) EventID {
	return k.ScheduleAtPrio(at, PriorityNormal, fn)
}

// ScheduleAtPrio schedules fn at time at with an explicit priority.
func (k *Kernel) ScheduleAtPrio(at Time, prio Priority, fn Handler) EventID {
	if at < k.now {
		at = k.now
	}
	ev := &event{
		at:   at,
		prio: prio,
		seq:  k.nextSeq,
		id:   k.nextID,
		fn:   fn,
	}
	k.nextSeq++
	k.nextID++
	heap.Push(&k.queue, ev)
	k.byID[ev.id] = ev
	return ev.id
}

// ScheduleAfter schedules fn to run after the given delay relative to the
// current simulation time. Negative delays are clamped to zero.
func (k *Kernel) ScheduleAfter(delay Time, fn Handler) EventID {
	return k.ScheduleAt(k.now.Add(delay), fn)
}

// ScheduleAfterPrio schedules fn after delay with an explicit priority.
func (k *Kernel) ScheduleAfterPrio(delay Time, prio Priority, fn Handler) EventID {
	return k.ScheduleAtPrio(k.now.Add(delay), prio, fn)
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if it already fired, was canceled, or never existed).
func (k *Kernel) Cancel(id EventID) bool {
	ev, ok := k.byID[id]
	if !ok || ev.canceled {
		return false
	}
	ev.canceled = true
	delete(k.byID, id)
	return true
}

// Stop makes the currently running Run/RunUntil return ErrStopped after
// the current handler completes. Pending events remain queued.
func (k *Kernel) Stop() { k.stopped = true }

// SetInterruptCheck installs fn as a cooperative interrupt, polled every
// `every` executed events during Run/RunUntil (every == 0 selects
// DefaultInterruptEvery). When fn returns a non-nil error the run aborts
// after the current handler completes and that error is returned; pending
// events remain queued, exactly as with Stop. A nil fn removes the check.
// Typical use wires a context.Context without per-event overhead:
//
//	k.SetInterruptCheck(0, func() error { return ctx.Err() })
func (k *Kernel) SetInterruptCheck(every uint64, fn func() error) {
	if fn == nil {
		k.interrupt = nil
		k.checkEvery = 0
		k.sinceCheck = 0
		return
	}
	if every == 0 {
		every = DefaultInterruptEvery
	}
	k.interrupt = fn
	k.checkEvery = every
	k.sinceCheck = 0
}

// pollInterrupt counts executed events and invokes the interrupt check at
// the configured granularity.
func (k *Kernel) pollInterrupt() error {
	if k.interrupt == nil {
		return nil
	}
	k.sinceCheck++
	if k.sinceCheck < k.checkEvery {
		return nil
	}
	k.sinceCheck = 0
	return k.interrupt()
}

// step pops and executes the next event. It reports false when the queue
// is exhausted.
func (k *Kernel) step() bool {
	for len(k.queue) > 0 {
		ev, ok := heap.Pop(&k.queue).(*event)
		if !ok {
			return false
		}
		if ev.canceled {
			continue
		}
		delete(k.byID, ev.id)
		k.now = ev.at
		k.executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty, Stop is called, or the
// interrupt check (SetInterruptCheck) reports an error.
func (k *Kernel) Run() error {
	k.stopped = false
	for !k.stopped {
		if !k.step() {
			return nil
		}
		if err := k.pollInterrupt(); err != nil {
			return err
		}
	}
	return ErrStopped
}

// RunUntil executes events with time stamps strictly before or at limit,
// then advances the clock to limit and returns. Events scheduled exactly
// at limit DO fire — this matches Algorithm 1's SimUntil semantics where
// the attack window [start, end] is inclusive of its boundaries. If the
// queue empties earlier, the clock still advances to limit. An interrupt
// check installed via SetInterruptCheck aborts the run with its error,
// leaving the clock at the last executed event so the caller can observe
// how far the run progressed.
func (k *Kernel) RunUntil(limit Time) error {
	if limit < k.now {
		return fmt.Errorf("des: RunUntil(%v) is in the past (now %v)", limit, k.now)
	}
	k.stopped = false
	for !k.stopped {
		ev := k.peek()
		if ev == nil || ev.at > limit {
			k.now = limit
			return nil
		}
		k.step()
		if err := k.pollInterrupt(); err != nil {
			return err
		}
	}
	return ErrStopped
}

// peek returns the next live event without removing it, discarding
// canceled entries along the way.
func (k *Kernel) peek() *event {
	for len(k.queue) > 0 {
		ev := k.queue[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(&k.queue)
	}
	return nil
}

// NextEventAt reports the time stamp of the next live event, or MaxTime
// when the queue is empty.
func (k *Kernel) NextEventAt() Time {
	ev := k.peek()
	if ev == nil {
		return MaxTime
	}
	return ev.at
}
