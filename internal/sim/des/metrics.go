package des

import "comfase/internal/obs"

// Metrics is the kernel's observability hookup: obs counters the kernel
// feeds without touching its event loop. Events is flushed as a delta at
// the END of every Run/RunUntil (never per event — the hot loop's cost
// is identical with metrics attached or not); Snapshots and Restores are
// bumped on the equally coarse checkpoint operations. Any field may be
// nil (obs metrics are nil-safe).
type Metrics struct {
	// Events counts delivered (non-canceled) events across runs.
	Events *obs.Counter
	// Snapshots counts Kernel.Snapshot calls.
	Snapshots *obs.Counter
	// Restores counts successful Kernel.Restore calls.
	Restores *obs.Counter
}

// SetMetrics attaches the obs counters the kernel reports into (nil
// detaches). Like the interrupt check and the event budget this is a
// runtime knob, not simulation state: Reset clears it and checkpoint
// snapshots do not capture it, so callers re-attach per run exactly as
// they re-apply the other knobs.
func (k *Kernel) SetMetrics(m *Metrics) {
	k.m = m
	k.reported = k.executed
}

// flushMetrics reports the events delivered since the last flush. It
// runs (via defer) when Run/RunUntil return — a handful of times per
// experiment — so per-event instrumentation cost is exactly zero.
func (k *Kernel) flushMetrics() {
	if k.m == nil {
		return
	}
	if k.executed > k.reported {
		k.m.Events.Add(k.executed - k.reported)
	}
	k.reported = k.executed
}
