package des

import "testing"

func TestKernelResetClearsState(t *testing.T) {
	k := NewKernel()
	fired := 0
	for i := 0; i < 10; i++ {
		k.ScheduleAt(Time(i)*Second, func() { fired++ })
	}
	if err := k.RunUntil(4 * Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	k.SetInterruptCheck(8, func() error { return nil })

	k.Reset()
	if k.Now() != 0 {
		t.Errorf("Now = %v after Reset, want 0", k.Now())
	}
	if k.Pending() != 0 {
		t.Errorf("Pending = %d after Reset, want 0", k.Pending())
	}
	if k.Executed() != 0 {
		t.Errorf("Executed = %d after Reset, want 0", k.Executed())
	}
	if k.NextEventAt() != MaxTime {
		t.Errorf("NextEventAt = %v after Reset, want MaxTime", k.NextEventAt())
	}

	// The reset kernel is fully reusable.
	fired = 0
	k.ScheduleAt(2*Second, func() { fired++ })
	if err := k.Run(); err != nil {
		t.Fatalf("Run after Reset: %v", err)
	}
	if fired != 1 || k.Now() != 2*Second {
		t.Errorf("post-Reset run fired=%d now=%v, want 1 at 2s", fired, k.Now())
	}
}

// A reset kernel must replay exactly the behaviour of a fresh kernel:
// same delivery order, same tie-breaking, same executed count.
func TestKernelResetDeterminism(t *testing.T) {
	run := func(k *Kernel) []Time {
		var fired []Time
		for _, at := range []Time{3 * Second, Second, Second, 2 * Second} {
			k.ScheduleAt(at, func() { fired = append(fired, k.Now()) })
		}
		id := k.ScheduleAt(1500*Millisecond, func() { t.Error("canceled event fired") })
		k.Cancel(id)
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return fired
	}
	k := NewKernel()
	first := run(k)
	k.Reset()
	second := run(k)
	if len(first) != len(second) {
		t.Fatalf("fired %d vs %d events", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, first[i], second[i])
		}
	}
}

// IDs issued before a Reset must not cancel (or otherwise affect) events
// scheduled after it, even though the slab slots are recycled.
func TestKernelResetInvalidatesStaleIDs(t *testing.T) {
	k := NewKernel()
	var stale []EventID
	for i := 0; i < 8; i++ {
		stale = append(stale, k.ScheduleAt(Time(i)*Second, func() {}))
	}
	k.Reset()

	fired := 0
	var fresh []EventID
	for i := 0; i < 8; i++ {
		fresh = append(fresh, k.ScheduleAt(Time(i)*Second, func() { fired++ }))
	}
	for i, id := range stale {
		if k.Cancel(id) {
			t.Fatalf("stale ID %d canceled a post-Reset event", i)
		}
	}
	for i, id := range fresh {
		for j, old := range stale {
			if id == old {
				t.Fatalf("fresh ID %d collides with pre-Reset ID %d", i, j)
			}
		}
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 8 {
		t.Errorf("fired = %d, want 8 (stale cancels must be no-ops)", fired)
	}
}

// Freelist recycling: a canceled event's slot is reused, and the old ID
// stays dead once recycled.
func TestKernelFreelistReuseAfterCancel(t *testing.T) {
	k := NewKernel()
	id := k.ScheduleAt(Second, func() { t.Error("canceled event fired") })
	if !k.Cancel(id) {
		t.Fatal("Cancel reported not pending")
	}
	if err := k.Run(); err != nil { // pops + recycles the canceled slot
		t.Fatalf("Run: %v", err)
	}

	fired := false
	id2 := k.ScheduleAt(2*Second, func() { fired = true })
	if id2 == id {
		t.Fatal("recycled slot reissued the same EventID")
	}
	if k.Cancel(id) {
		t.Fatal("stale ID canceled the slot's new occupant")
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Error("event scheduled on recycled slot did not fire")
	}
	// Slab must not have grown beyond the single slot both events used.
	if len(k.slab) != 1 {
		t.Errorf("slab has %d slots, want 1 (slot not recycled)", len(k.slab))
	}
}

// Steady-state scheduling is allocation-free: once the slab has grown to
// the working-set size, a schedule/pop cycle touches no heap memory.
func TestKernelScheduleZeroAllocs(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	// Warm the slab and heap to steady-state capacity.
	for i := 0; i < 1024; i++ {
		k.ScheduleAfter(Time(i)*Microsecond, fn)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("warmup Run: %v", err)
	}
	allocs := testing.AllocsPerRun(10000, func() {
		k.ScheduleAfter(Microsecond, fn)
		if !k.step() {
			t.Fatal("step found empty queue")
		}
	})
	if allocs != 0 {
		t.Fatalf("schedule/pop cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// Schedule/cancel/pop is equally allocation-free: lazy deletion marks the
// slot in place and recycles it at pop time.
func TestKernelScheduleCancelZeroAllocs(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	for i := 0; i < 64; i++ {
		k.ScheduleAfter(Time(i)*Microsecond, fn)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("warmup Run: %v", err)
	}
	allocs := testing.AllocsPerRun(10000, func() {
		keep := k.ScheduleAfter(Microsecond, fn)
		drop := k.ScheduleAfter(2*Microsecond, fn)
		_ = keep
		if !k.Cancel(drop) {
			t.Fatal("Cancel failed")
		}
		if !k.step() { // delivers keep, then recycles drop on next peek
			t.Fatal("step found empty queue")
		}
		if _, ok := k.peek(); ok {
			t.Fatal("canceled event survived peek")
		}
	})
	if allocs != 0 {
		t.Fatalf("schedule/cancel/pop cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// Reset itself must not allocate: it only recycles slots.
func TestKernelResetZeroAllocs(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	for i := 0; i < 256; i++ {
		k.ScheduleAfter(Time(i)*Microsecond, fn)
	}
	k.Reset()
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 16; i++ {
			k.ScheduleAfter(Time(i)*Microsecond, fn)
		}
		k.Reset()
	})
	if allocs != 0 {
		t.Fatalf("schedule-burst/Reset cycle allocates %.1f objects/op, want 0", allocs)
	}
}
