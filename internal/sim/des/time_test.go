package des

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestFromSeconds(t *testing.T) {
	tests := []struct {
		name string
		give float64
		want Time
	}{
		{name: "zero", give: 0, want: 0},
		{name: "one second", give: 1, want: Second},
		{name: "beacon interval", give: 0.1, want: 100 * Millisecond},
		{name: "attack start", give: 17.2, want: 17200 * Millisecond},
		{name: "sub-nanosecond rounds", give: 0.4e-9, want: 0},
		{name: "half nanosecond rounds up", give: 0.5e-9, want: 1},
		{name: "negative", give: -2.5, want: -2500 * Millisecond},
		{name: "sixty seconds", give: 60, want: Minute},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := FromSeconds(tt.give); got != tt.want {
				t.Errorf("FromSeconds(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	f := func(ns int64) bool {
		// Constrain to +/- ~1 day: beyond ~2^52 ns the float64 detour
		// loses sub-nanosecond precision (far beyond any sim horizon).
		ns %= int64(1e14)
		tm := Time(ns)
		return FromSeconds(tm.Seconds()) == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromDuration(t *testing.T) {
	if got := FromDuration(1500 * time.Millisecond); got != 1500*Millisecond {
		t.Errorf("FromDuration = %v, want 1.5s", got)
	}
	if got := Time(250 * Millisecond).Duration(); got != 250*time.Millisecond {
		t.Errorf("Duration = %v, want 250ms", got)
	}
}

func TestTimeAddSaturates(t *testing.T) {
	tests := []struct {
		name string
		t    Time
		d    Time
		want Time
	}{
		{name: "normal add", t: Second, d: Second, want: 2 * Second},
		{name: "saturate high", t: MaxTime - 1, d: 10, want: MaxTime},
		{name: "exact max", t: MaxTime, d: 0, want: MaxTime},
		{name: "negative", t: Second, d: -2 * Second, want: -Second},
		{name: "saturate low", t: Time(math.MinInt64) + 1, d: -10, want: Time(math.MinInt64)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.t.Add(tt.d); got != tt.want {
				t.Errorf("%v.Add(%v) = %v, want %v", tt.t, tt.d, got, tt.want)
			}
		})
	}
}

func TestTimeComparisons(t *testing.T) {
	a, b := Second, 2*Second
	if !a.Before(b) || b.Before(a) || a.Before(a) {
		t.Error("Before misbehaves")
	}
	if !b.After(a) || a.After(b) || a.After(a) {
		t.Error("After misbehaves")
	}
	if got := b.Sub(a); got != Second {
		t.Errorf("Sub = %v, want 1s", got)
	}
}

func TestTimeString(t *testing.T) {
	tests := []struct {
		give Time
		want string
	}{
		{give: 0, want: "0s"},
		{give: 17200 * Millisecond, want: "17.2s"},
		{give: Minute, want: "60s"},
		{give: MaxTime, want: "+inf"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(tt.give), got, tt.want)
		}
	}
}
