package des

import (
	"errors"
	"testing"
)

// TestSnapshotRestoreReplaysIdentically pins the core forking contract:
// restoring a snapshot and re-running produces the exact event sequence
// the first run past the snapshot produced.
func TestSnapshotRestoreReplaysIdentically(t *testing.T) {
	k := NewKernel()
	var trace []Time
	var schedule func(at Time, depth int)
	schedule = func(at Time, depth int) {
		k.ScheduleAt(at, func() {
			trace = append(trace, k.Now())
			if depth > 0 {
				schedule(k.Now().Add(3*Millisecond), depth-1)
			}
		})
	}
	for i := 0; i < 5; i++ {
		schedule(Time(i)*10*Millisecond, 2)
	}
	if err := k.RunUntil(20 * Millisecond); err != nil {
		t.Fatalf("prefix: %v", err)
	}

	var st KernelState
	k.Snapshot(&st)
	wantNow, wantExec := k.Now(), k.Executed()

	trace = trace[:0]
	if err := k.Run(); err != nil {
		t.Fatalf("first continuation: %v", err)
	}
	want := append([]Time(nil), trace...)

	if err := k.Restore(&st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if k.Now() != wantNow || k.Executed() != wantExec {
		t.Fatalf("restore rewound to now=%v executed=%d, want %v/%d",
			k.Now(), k.Executed(), wantNow, wantExec)
	}
	trace = trace[:0]
	if err := k.Run(); err != nil {
		t.Fatalf("second continuation: %v", err)
	}
	if len(trace) != len(want) {
		t.Fatalf("replay fired %d events, want %d", len(trace), len(want))
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("replay diverged at event %d: %v, want %v", i, trace[i], want[i])
		}
	}
}

// TestRestoreRevivesCanceledAndInvalidatesNewIDs covers the generation
// edge cases around a restore: an event canceled AFTER the snapshot fires
// again on replay, an event scheduled after the snapshot vanishes, and
// the ID issued for it goes permanently stale.
func TestRestoreRevivesCanceledAndInvalidatesNewIDs(t *testing.T) {
	k := NewKernel()
	fired := map[string]int{}
	a := k.ScheduleAt(10*Millisecond, func() { fired["a"]++ })

	var st KernelState
	k.Snapshot(&st)

	b := k.ScheduleAt(20*Millisecond, func() { fired["b"]++ })
	if !k.Cancel(a) {
		t.Fatal("cancel of live pre-snapshot event failed")
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired["a"] != 0 || fired["b"] != 1 {
		t.Fatalf("pre-restore run fired %v, want only b", fired)
	}

	if err := k.Restore(&st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	// b was scheduled after the snapshot: its slot no longer holds it.
	if k.Cancel(b) {
		t.Error("post-snapshot ID canceled an event after restore")
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run after restore: %v", err)
	}
	if fired["a"] != 1 || fired["b"] != 1 {
		t.Fatalf("post-restore run fired %v, want a revived exactly once", fired)
	}
	// The revived event is gone now; its ID must be dead too.
	if k.Cancel(a) {
		t.Error("pre-snapshot ID still live after its event fired")
	}
}

// TestRestoreAfterBudgetExceeded pins the watchdog interplay: a run
// aborted by the event budget restores cleanly, and an identical budget
// aborts the replay at the identical event count.
func TestRestoreAfterBudgetExceeded(t *testing.T) {
	k := NewKernel()
	var reschedule func()
	n := 0
	reschedule = func() {
		n++
		k.ScheduleAfter(Millisecond, reschedule)
	}
	k.ScheduleAfter(Millisecond, reschedule)
	if err := k.RunUntil(5 * Millisecond); err != nil {
		t.Fatalf("prefix: %v", err)
	}
	var st KernelState
	k.Snapshot(&st)

	k.SetInterruptCheck(4, func() error { return nil })
	k.SetEventBudget(20)
	err := k.RunUntil(Minute)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	abortExec, abortNow := k.Executed(), k.Now()

	// Same knobs, then restore (the caller contract: knobs BEFORE
	// Restore, which rewinds the poll phase) — the abort must be
	// deterministic.
	k.SetInterruptCheck(4, func() error { return nil })
	k.SetEventBudget(20)
	if err := k.Restore(&st); err != nil {
		t.Fatalf("Restore after budget abort: %v", err)
	}
	err = k.RunUntil(Minute)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("replay err = %v, want ErrBudgetExceeded", err)
	}
	if k.Executed() != abortExec || k.Now() != abortNow {
		t.Fatalf("replay aborted at executed=%d now=%v, want %d/%v",
			k.Executed(), k.Now(), abortExec, abortNow)
	}

	// A raised budget lets the restored run proceed past the old abort.
	k.SetInterruptCheck(4, func() error { return nil })
	k.SetEventBudget(100)
	if err := k.Restore(&st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if err := k.RunUntil(50 * Millisecond); err != nil {
		t.Fatalf("run with raised budget: %v", err)
	}
	if k.Executed() <= abortExec {
		t.Fatalf("raised budget executed %d, want > %d", k.Executed(), abortExec)
	}
}

// TestRestoreRejectsForeignAndEmptyState pins the ownership contract.
func TestRestoreRejectsForeignAndEmptyState(t *testing.T) {
	a, b := NewKernel(), NewKernel()
	var st KernelState
	a.Snapshot(&st)
	if err := b.Restore(&st); !errors.Is(err, ErrForeignState) {
		t.Errorf("foreign restore err = %v, want ErrForeignState", err)
	}
	var empty KernelState
	if err := a.Restore(&empty); err == nil {
		t.Error("restore from empty state succeeded")
	}
}

// TestSnapshotRestoreAllocs pins the steady-state fork path: once the
// state buffers have grown, Snapshot and Restore allocate nothing.
func TestSnapshotRestoreAllocs(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 64; i++ {
		at := Time(i) * Millisecond
		k.ScheduleAt(at, func() {})
	}
	if err := k.RunUntil(10 * Millisecond); err != nil {
		t.Fatalf("prefix: %v", err)
	}
	var st KernelState
	k.Snapshot(&st) // warm the buffers
	allocs := testing.AllocsPerRun(100, func() {
		k.Snapshot(&st)
		if err := k.Restore(&st); err != nil {
			t.Fatalf("Restore: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("Snapshot+Restore allocated %.1f per cycle, want 0", allocs)
	}
}

// FuzzKernelSnapshot interleaves snapshot/restore with scheduling,
// cancellation, running and resets, checking that a restore always
// rewinds the clock and executed count to the captured values, that IDs
// issued after a snapshot never cancel anything once restored, and that
// the kernel keeps draining cleanly.
func FuzzKernelSnapshot(f *testing.F) {
	f.Add([]byte{0, 10, 4, 0, 0, 20, 2, 30, 5, 0})
	f.Add([]byte{0, 5, 0, 5, 4, 0, 1, 0, 5, 0, 2, 40})
	f.Add([]byte{4, 0, 0, 9, 5, 0, 3, 0, 4, 0, 5, 0})
	f.Add([]byte{0, 1, 2, 1, 4, 0, 0, 2, 2, 3, 5, 0, 2, 255})
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 256 {
			program = program[:256]
		}
		k := NewKernel()
		var st KernelState
		var snapNow Time
		var snapExec uint64
		haveSnap := false
		var ids []EventID      // issued since the last reset
		var postSnap []EventID // issued after the live snapshot
		for i := 0; i+1 < len(program); i += 2 {
			op, arg := program[i]%6, Time(program[i+1])*Millisecond
			switch op {
			case 0: // schedule
				id := k.ScheduleAt(k.Now().Add(arg), func() {})
				ids = append(ids, id)
				if haveSnap {
					postSnap = append(postSnap, id)
				}
			case 1: // cancel a (possibly stale) id
				if len(ids) > 0 {
					k.Cancel(ids[int(program[i+1])%len(ids)])
				}
			case 2: // run until arg past now
				if err := k.RunUntil(k.Now().Add(arg)); err != nil {
					t.Fatalf("RunUntil: %v", err)
				}
			case 3: // reset invalidates the snapshot's meaning for replay,
				// but restore after reset must still rewind consistently.
				k.Reset()
				ids = ids[:0]
			case 4: // snapshot
				k.Snapshot(&st)
				snapNow, snapExec = k.Now(), k.Executed()
				haveSnap = true
				postSnap = postSnap[:0]
			case 5: // restore
				if !haveSnap {
					continue
				}
				if err := k.Restore(&st); err != nil {
					t.Fatalf("Restore: %v", err)
				}
				if k.Now() != snapNow || k.Executed() != snapExec {
					t.Fatalf("restore landed at now=%v executed=%d, want %v/%d",
						k.Now(), k.Executed(), snapNow, snapExec)
				}
				for _, id := range postSnap {
					if k.Cancel(id) {
						t.Fatalf("post-snapshot ID %v live after restore", id)
					}
				}
				postSnap = postSnap[:0]
			}
		}
		if err := k.Run(); err != nil {
			t.Fatalf("final drain: %v", err)
		}
		if k.Pending() != 0 {
			t.Fatalf("drain left %d pending events", k.Pending())
		}
	})
}
