package des

// Ticker schedules a handler at a fixed period, like OMNeT++ self-message
// loops. It exists because almost every module in the stack (traffic
// stepper, beaconing application, controller update, channel-switching
// schedule) needs a periodic callback with a deterministic phase.
type Ticker struct {
	k       *Kernel
	period  Time
	prio    Priority
	fn      Handler
	next    EventID
	running bool
	// tickFn is the bound tick method, created once so re-arming does not
	// allocate a fresh method value on every tick.
	tickFn Handler
}

// NewTicker creates a stopped ticker. period must be positive.
func NewTicker(k *Kernel, period Time, prio Priority, fn Handler) *Ticker {
	if period <= 0 {
		period = Nanosecond
	}
	t := &Ticker{k: k, period: period, prio: prio, fn: fn}
	t.tickFn = t.tick
	return t
}

// Start arms the ticker so that fn first fires at the absolute time
// first, then every period after that. Calling Start on a running ticker
// re-phases it.
func (t *Ticker) Start(first Time) {
	t.StopTicker()
	t.running = true
	t.next = t.k.ScheduleAtPrio(first, t.prio, t.tickFn)
}

// Rebind stops the ticker and re-targets it at a kernel and period,
// reusing the ticker object (and its bound tick handler) across
// experiment-workspace resets. period must be positive.
func (t *Ticker) Rebind(k *Kernel, period Time) {
	t.StopTicker()
	if period <= 0 {
		period = Nanosecond
	}
	t.k = k
	t.period = period
	t.next = 0
}

// StopTicker cancels the pending tick. The name avoids a collision with
// the Stop of embedding types.
func (t *Ticker) StopTicker() {
	if t.running {
		t.k.Cancel(t.next)
		t.running = false
	}
}

// Running reports whether the ticker is armed.
func (t *Ticker) Running() bool { return t.running }

// Period reports the tick period.
func (t *Ticker) Period() Time { return t.period }

func (t *Ticker) tick() {
	if !t.running {
		return
	}
	// Re-arm before running fn so fn may call StopTicker.
	t.next = t.k.ScheduleAtPrio(t.k.Now().Add(t.period), t.prio, t.tickFn)
	t.fn()
}
