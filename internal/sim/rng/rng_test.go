package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSameSeedSameSequence(t *testing.T) {
	a := New(7, "phy")
	b := New(7, "phy")
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentNamesDiffer(t *testing.T) {
	a := New(7, "phy")
	b := New(7, "mac")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different names coincide on %d/100 draws", same)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1, "phy")
	b := New(2, "phy")
	if a.Float64() == b.Float64() && a.Float64() == b.Float64() {
		t.Error("different seeds produced identical draws")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7, "exp")
	c1 := parent.Split("child")
	// Re-derive: a fresh parent split the same way must agree.
	parent2 := New(7, "exp")
	c2 := parent2.Split("child")
	for i := 0; i < 100; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatalf("split streams not reproducible at draw %d", i)
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3, "u")
	f := func(lo, hi float64) bool {
		lo = math.Mod(math.Abs(lo), 1000)
		hi = lo + 1 + math.Mod(math.Abs(hi), 1000)
		v := s.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3, "f")
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntNRange(t *testing.T) {
	s := New(3, "i")
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("IntN(7) only produced %d distinct values in 1000 draws", len(seen))
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(3, "b")
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(<0) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(>1) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(3, "bf")
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %v", p)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(3, "n")
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("Normal mean = %v, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("Normal variance = %v, want ~4", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(3, "e")
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exponential(2.5)
		if v < 0 {
			t.Fatalf("Exponential returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Errorf("Exponential mean = %v, want ~2.5", mean)
	}
}

func TestRayleighPositive(t *testing.T) {
	s := New(3, "r")
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Rayleigh(1)
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Rayleigh invalid sample %v", v)
		}
		sum += v
	}
	// Rayleigh mean = sigma*sqrt(pi/2) ~ 1.2533.
	mean := sum / n
	if math.Abs(mean-1.2533) > 0.02 {
		t.Errorf("Rayleigh mean = %v, want ~1.2533", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(3, "p")
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
}
