// Package rng provides named, deterministic random-number streams for
// simulation experiments. It mirrors OMNeT++'s per-module RNG mapping:
// every consumer (PHY decider, MAC backoff, workload jitter, ...) draws
// from its own stream, so adding a new random consumer never perturbs the
// draws seen by existing ones. That stream independence is what keeps a
// ComFASE golden run comparable with its attack runs.
package rng

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// Source is a deterministic random stream. It wraps the stdlib PCG
// generator with the handful of distributions the simulator needs.
type Source struct {
	r   *rand.Rand
	pcg *rand.PCG
}

// streamState hashes a stream name to the second PCG seed word.
func streamState(name string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return h.Sum64()
}

// New returns a stream derived from a campaign seed and a stream name.
// The same (seed, name) pair always yields the same sequence; distinct
// names yield statistically independent sequences.
func New(seed uint64, name string) *Source {
	return NewFromState(seed, streamState(name))
}

// NewFromState returns a stream from two raw 64-bit state words. It is
// used by Split for hierarchical stream derivation.
func NewFromState(a, b uint64) *Source {
	pcg := rand.NewPCG(a, b)
	return &Source{r: rand.New(pcg), pcg: pcg}
}

// Reseed rewinds the stream to the state New(seed, name) would start
// from, reusing the generator allocation. It is the reset hook for
// experiment-workspace reuse: a reseeded stream replays exactly the draw
// sequence of a freshly constructed one.
func (s *Source) Reseed(seed uint64, name string) {
	s.pcg.Seed(seed, streamState(name))
}

// StateSize is the serialised size of a Source's generator state (the
// stdlib PCG binary encoding).
const StateSize = 20

// State is a restorable snapshot of a Source's position in its stream.
type State [StateSize]byte

// SaveState captures the stream position. It is the checkpoint hook of
// prefix-forked campaigns: LoadState rewinds the stream so the restored
// run replays exactly the draw sequence the snapshot-time run would.
func (s *Source) SaveState(into *State) error {
	b, err := s.pcg.MarshalBinary()
	if err != nil {
		return err
	}
	if len(b) != StateSize {
		return fmt.Errorf("rng: unexpected PCG state size %d", len(b))
	}
	copy(into[:], b)
	return nil
}

// LoadState rewinds the stream to a position captured by SaveState.
// It does not allocate, so the restore path of a checkpointed campaign
// stays allocation-free.
func (s *Source) LoadState(from *State) error {
	return s.pcg.UnmarshalBinary(from[:])
}

// Split derives an independent child stream identified by name.
func (s *Source) Split(name string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return NewFromState(s.r.Uint64(), h.Sum64())
}

// Float64 returns a uniform sample in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform sample in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// IntN returns a uniform integer in [0, n). n must be positive.
func (s *Source) IntN(n int) int { return s.r.IntN(n) }

// Normal returns a normally distributed sample.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// Exponential returns an exponentially distributed sample with the given
// mean (not rate).
func (s *Source) Exponential(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.r.Float64() < p
}

// Rayleigh returns a Rayleigh-distributed sample with scale sigma. Used
// by the fading channel models.
func (s *Source) Rayleigh(sigma float64) float64 {
	u := s.r.Float64()
	// Guard against log(0).
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return sigma * math.Sqrt(-2*math.Log(u))
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }
