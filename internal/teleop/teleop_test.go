package teleop

import (
	"testing"

	"comfase/internal/geo"
	"comfase/internal/mac"
	"comfase/internal/nic"
	"comfase/internal/phy"
	"comfase/internal/roadnet"
	"comfase/internal/sim/des"
	"comfase/internal/traffic"
	"comfase/internal/vehicle"
	"comfase/internal/wave1609"
)

// rig is a minimal teleoperation scene: an operator at the roadside and
// one remote vehicle on a traffic simulator.
type rig struct {
	k   *des.Kernel
	air *nic.Air
	sim *traffic.Simulator
	op  *Operator
	rv  *RemoteVehicle
}

func newRig(t *testing.T, watchdog des.Time, policy Policy) *rig {
	t.Helper()
	k := des.NewKernel()
	net, err := roadnet.NewNetwork(roadnet.PaperHighway())
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	sim, err := traffic.NewSimulator(traffic.Config{Kernel: k, Network: net})
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	air, err := nic.NewAir(nic.Config{
		Kernel:   k,
		Channel:  phy.DefaultChannelConfig(),
		Schedule: wave1609.NewSchedule(wave1609.AccessContinuous),
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("NewAir: %v", err)
	}
	veh, err := sim.AddVehicle(vehicle.PaperCar("remote"), vehicle.State{Pos: 100, Speed: 0})
	if err != nil {
		t.Fatalf("AddVehicle: %v", err)
	}
	rv, err := NewRemoteVehicle(RemoteVehicleConfig{
		Kernel: k, Air: air, Vehicle: veh, Watchdog: watchdog,
	})
	if err != nil {
		t.Fatalf("NewRemoteVehicle: %v", err)
	}
	op, err := NewOperator(OperatorConfig{
		Kernel: k, Air: air, Position: geo.Vec{X: 100, Y: 20}, Policy: policy,
	})
	if err != nil {
		t.Fatalf("NewOperator: %v", err)
	}
	dt := sim.StepLength().Seconds()
	sim.OnPreStep(func(now des.Time) { rv.ControlStep(now, dt) })
	if err := sim.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return &rig{k: k, air: air, sim: sim, op: op, rv: rv}
}

func constantSpeedPolicy(v float64) Policy {
	return func(des.Time) Command { return Command{TargetSpeed: v} }
}

func TestOperatorValidation(t *testing.T) {
	k := des.NewKernel()
	air, _ := nic.NewAir(nic.Config{
		Kernel: k, Channel: phy.DefaultChannelConfig(),
		Schedule: wave1609.NewSchedule(wave1609.AccessContinuous),
	})
	pol := constantSpeedPolicy(10)
	if _, err := NewOperator(OperatorConfig{Air: air, Policy: pol}); err == nil {
		t.Error("nil kernel accepted")
	}
	if _, err := NewOperator(OperatorConfig{Kernel: k, Policy: pol}); err == nil {
		t.Error("nil air accepted")
	}
	if _, err := NewOperator(OperatorConfig{Kernel: k, Air: air}); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestRemoteVehicleValidation(t *testing.T) {
	k := des.NewKernel()
	air, _ := nic.NewAir(nic.Config{
		Kernel: k, Channel: phy.DefaultChannelConfig(),
		Schedule: wave1609.NewSchedule(wave1609.AccessContinuous),
	})
	veh, _ := vehicle.New(vehicle.PaperCar("v"), vehicle.State{})
	if _, err := NewRemoteVehicle(RemoteVehicleConfig{Air: air, Vehicle: veh}); err == nil {
		t.Error("nil kernel accepted")
	}
	if _, err := NewRemoteVehicle(RemoteVehicleConfig{Kernel: k, Vehicle: veh}); err == nil {
		t.Error("nil air accepted")
	}
	if _, err := NewRemoteVehicle(RemoteVehicleConfig{Kernel: k, Air: air}); err == nil {
		t.Error("nil vehicle accepted")
	}
	if _, err := NewRemoteVehicle(RemoteVehicleConfig{
		Kernel: k, Air: air, Vehicle: veh, Watchdog: -1,
	}); err == nil {
		t.Error("negative watchdog accepted")
	}
}

func TestRemoteVehicleTracksCommandedSpeed(t *testing.T) {
	r := newRig(t, 0, constantSpeedPolicy(15))
	r.op.Start()
	if err := r.k.RunUntil(20 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if got := r.rv.Vehicle().State.Speed; got < 14.5 || got > 15.5 {
		t.Errorf("speed = %v, want ~15", got)
	}
	if r.rv.Received() == 0 || r.op.Sent == 0 {
		t.Error("no commands flowed")
	}
	if age := r.rv.LastCommandAge(); age > 100*des.Millisecond {
		t.Errorf("command age = %v, want fresh", age)
	}
}

func TestRemoteVehicleIdleWithoutCommands(t *testing.T) {
	r := newRig(t, 0, constantSpeedPolicy(15))
	// Operator never started.
	if err := r.k.RunUntil(5 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if got := r.rv.Vehicle().State.Speed; got != 0 {
		t.Errorf("speed = %v without commands, want 0", got)
	}
	if r.rv.LastCommandAge() != des.MaxTime {
		t.Error("command age should be MaxTime before any command")
	}
}

func TestBrakeCommand(t *testing.T) {
	braking := func(now des.Time) Command {
		if now > 10*des.Second {
			return Command{Brake: true, BrakeDecel: 4}
		}
		return Command{TargetSpeed: 20}
	}
	r := newRig(t, 0, braking)
	r.op.Start()
	if err := r.k.RunUntil(30 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if got := r.rv.Vehicle().State.Speed; got != 0 {
		t.Errorf("speed = %v after brake command, want 0", got)
	}
}

// TestWatchdogSafeStopUnderDoS is the teleoperation headline: a DoS on
// the command link. Without a watchdog the vehicle blindly keeps the
// last commanded speed; with one it stops.
func TestWatchdogSafeStopUnderDoS(t *testing.T) {
	run := func(watchdog des.Time) (speedAtEnd float64, safeStops uint64) {
		r := newRig(t, watchdog, constantSpeedPolicy(20))
		r.op.Start()
		// Let the vehicle reach speed, then kill the command link by
		// dropping every frame to the remote vehicle.
		r.k.ScheduleAt(15*des.Second, func() {
			r.air.SetInterceptor(dropTo{"remote"})
		})
		if err := r.k.RunUntil(40 * des.Second); err != nil {
			t.Fatalf("RunUntil: %v", err)
		}
		return r.rv.Vehicle().State.Speed, r.rv.SafeStops()
	}
	speedNoWD, stopsNoWD := run(0)
	if speedNoWD < 19 {
		t.Errorf("without watchdog: speed = %v, want ~20 (blind continuation)", speedNoWD)
	}
	if stopsNoWD != 0 {
		t.Errorf("without watchdog: safeStops = %d", stopsNoWD)
	}
	speedWD, stopsWD := run(500 * des.Millisecond)
	if speedWD != 0 {
		t.Errorf("with watchdog: speed = %v, want 0 (safe stop)", speedWD)
	}
	if stopsWD == 0 {
		t.Error("with watchdog: no safe-stop steps recorded")
	}
}

func TestStaleCommandDoesNotRollBack(t *testing.T) {
	r := newRig(t, 0, constantSpeedPolicy(10))
	fresh := Command{Seq: 2, SentAt: 10 * des.Second, TargetSpeed: 30}
	stale := Command{Seq: 1, SentAt: 5 * des.Second, TargetSpeed: 1}
	r.rv.handleRx(frameWith(fresh), nic.RxMeta{RxAt: 10 * des.Second})
	r.rv.handleRx(frameWith(stale), nic.RxMeta{RxAt: 11 * des.Second})
	if r.rv.lastCmd.TargetSpeed != 30 {
		t.Errorf("stale command rolled state back: %+v", r.rv.lastCmd)
	}
}

// dropTo drops every frame destined for one receiver.
type dropTo struct{ dst string }

func (d dropTo) Intercept(_ des.Time, _, dst string, _ mac.Frame) nic.Verdict {
	return nic.Verdict{Drop: dst == d.dst}
}

func frameWith(c Command) mac.Frame {
	return mac.Frame{Src: "operator", Bits: CommandBits, AC: mac.ACVoice, Payload: c}
}
