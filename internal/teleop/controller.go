package teleop

import "comfase/internal/platoon"

// DriveController adapts teleoperation to the platoon controller
// interface so campaign scenarios can sweep attacks over a remotely
// driven follower: the vehicle executes speed commands derived from its
// predecessor's V2V state (the operator relay) and ignores its own
// radar — the operator supplies all perception, so the communication
// link is the single point of failure exactly as in the package's
// standalone RemoteVehicle model. A command watchdog performs a
// controlled stop when the relayed state goes stale.
type DriveController struct {
	// Watchdog is the staleness bound in seconds (0 disables it, the
	// unprotected configuration).
	Watchdog float64
	// SafeDecel is the safe-stop braking magnitude (default 6).
	SafeDecel float64
	// Gain is the speed-tracking gain (default 2).
	Gain float64
	// GapGain couples the communicated gap error into the speed target
	// (default 0.5); the reference gap is the formation spacing.
	GapGain float64
	// DesiredGap is the commanded bumper-to-bumper gap in metres
	// (default 5, the formation spacing).
	DesiredGap float64

	// clock accumulates control time; beacon stamps are kernel times, so
	// the difference is the command staleness. It is the controller's
	// only state, checkpointed through ControllerState.
	clock float64
}

// DefaultDrive returns the drive controller with the given watchdog and
// the package defaults.
func DefaultDrive(watchdogS float64) *DriveController {
	return &DriveController{Watchdog: watchdogS, SafeDecel: 6, Gain: 2, GapGain: 0.5, DesiredGap: 5}
}

var _ platoon.StatefulController = (*DriveController)(nil)

// Name implements platoon.Controller.
func (c *DriveController) Name() string { return "TELEOP" }

// Reset implements platoon.Controller.
func (c *DriveController) Reset() { c.clock = 0 }

// Update implements platoon.Controller. Only the predecessor's
// communicated state is used: position, speed and time stamp all come
// over the V2V channel, so delay/DoS attacks stale or freeze them.
func (c *DriveController) Update(dt float64, self platoon.Snapshot, _, pred platoon.KinState) float64 {
	c.clock += dt
	if !pred.Valid {
		return 0
	}
	if c.Watchdog > 0 && c.clock-pred.Time.Seconds() > c.Watchdog {
		return -c.SafeDecel
	}
	// Speed command: match the relayed predecessor speed, corrected by
	// the communicated gap error so the formation holds under lag.
	gap := pred.Pos - pred.Length - self.Pos
	target := pred.Speed + c.GapGain*(gap-c.DesiredGap)
	if target < 0 {
		target = 0
	}
	return c.Gain * (target - self.Speed)
}

// SaveState implements platoon.StatefulController, keeping teleoperated
// followers on the checkpoint-forking fast path.
func (c *DriveController) SaveState() platoon.ControllerState {
	return platoon.ControllerState{U: c.clock}
}

// LoadState implements platoon.StatefulController.
func (c *DriveController) LoadState(s platoon.ControllerState) { c.clock = s.U }
