// Package teleop implements the second traffic scenario the paper names
// (§III: "ComFASE allows to integrate different traffic scenarios such
// as platooning and teleoperation"; §V plans its evaluation): a remotely
// driven vehicle that executes speed commands received from an operator
// station over the V2V/V2I channel.
//
// The safety structure differs from platooning: the vehicle is blind on
// its own (the operator supplies all perception), so the communication
// channel is the single point of failure. A command watchdog — stop when
// commands stale — is the standard mitigation; the package models the
// vehicle with and without it so ComFASE campaigns can quantify the
// difference under delay/DoS attacks.
package teleop

import (
	"errors"

	"comfase/internal/geo"
	"comfase/internal/mac"
	"comfase/internal/nic"
	"comfase/internal/sim/des"
	"comfase/internal/vehicle"
)

// Command is one operator-to-vehicle drive command.
type Command struct {
	// Seq is the command sequence number.
	Seq uint64 `json:"seq"`
	// SentAt is the operator-side time stamp.
	SentAt des.Time `json:"sentAtNs"`
	// TargetSpeed is the commanded speed in m/s (0 = stop).
	TargetSpeed float64 `json:"targetSpeedMps"`
	// Brake requests an immediate controlled stop at BrakeDecel.
	Brake bool `json:"brake,omitempty"`
	// BrakeDecel is the requested braking magnitude (m/s^2).
	BrakeDecel float64 `json:"brakeDecelMps2,omitempty"`
}

// CommandBits is the on-air payload size of a command message.
const CommandBits = 256

// Policy computes the operator's command for the current scene. The
// operator is assumed to have full scene perception (camera/CCTV
// uplink); what the attacks degrade is the downlink carrying commands.
type Policy func(now des.Time) Command

// Operator is the remote driving station: a fixed roadside radio that
// sends commands at a fixed period.
type Operator struct {
	k      *des.Kernel
	radio  *nic.Radio
	policy Policy
	ticker *des.Ticker
	seq    uint64
	// Sent counts transmitted commands.
	Sent uint64
}

// OperatorConfig wires an operator station.
type OperatorConfig struct {
	// Kernel drives the command ticker (required).
	Kernel *des.Kernel
	// Air is the shared medium (required).
	Air *nic.Air
	// ID names the station radio ("operator").
	ID string
	// Position is the fixed antenna location.
	Position geo.Vec
	// Period is the command interval (default 50 ms, 20 Hz).
	Period des.Time
	// Policy computes commands (required).
	Policy Policy
}

// NewOperator registers the station on the medium.
func NewOperator(cfg OperatorConfig) (*Operator, error) {
	switch {
	case cfg.Kernel == nil:
		return nil, errors.New("teleop: Kernel is required")
	case cfg.Air == nil:
		return nil, errors.New("teleop: Air is required")
	case cfg.Policy == nil:
		return nil, errors.New("teleop: Policy is required")
	}
	id := cfg.ID
	if id == "" {
		id = "operator"
	}
	period := cfg.Period
	if period <= 0 {
		period = 50 * des.Millisecond
	}
	o := &Operator{k: cfg.Kernel, policy: cfg.Policy}
	radio, err := cfg.Air.AddRadio(id, func() geo.Vec { return cfg.Position }, nil)
	if err != nil {
		return nil, err
	}
	o.radio = radio
	o.ticker = des.NewTicker(cfg.Kernel, period, des.PriorityNormal, o.sendCommand)
	return o, nil
}

// Start arms the command stream.
func (o *Operator) Start() { o.ticker.Start(o.k.Now().Add(o.ticker.Period())) }

// Stop disarms the command stream.
func (o *Operator) Stop() { o.ticker.StopTicker() }

func (o *Operator) sendCommand() {
	o.seq++
	cmd := o.policy(o.k.Now())
	cmd.Seq = o.seq
	cmd.SentAt = o.k.Now()
	// Drive commands ride the voice category: lowest latency class.
	_ = o.radio.Send(cmd, CommandBits, mac.ACVoice, o.seq)
	o.Sent++
}

// RemoteVehicle executes operator commands. Without a watchdog it keeps
// executing the last command forever; with one it performs a safe stop
// when commands go stale.
type RemoteVehicle struct {
	k     *des.Kernel
	veh   *vehicle.Vehicle
	radio *nic.Radio

	// Watchdog is the staleness bound; zero disables the safe-stop.
	watchdog  des.Time
	safeDecel float64
	gain      float64

	lastCmd   Command
	lastRxAt  des.Time
	hasCmd    bool
	safeStops uint64
	received  uint64
}

// RemoteVehicleConfig wires a teleoperated vehicle.
type RemoteVehicleConfig struct {
	// Kernel is the shared event kernel (required).
	Kernel *des.Kernel
	// Air is the shared medium (required).
	Air *nic.Air
	// Vehicle is the driven vehicle (required).
	Vehicle *vehicle.Vehicle
	// LaneY maps the lane index to the antenna's lateral coordinate.
	LaneY func(lane int) float64
	// Watchdog is the command-staleness bound that triggers a safe stop
	// (zero = no watchdog, the unprotected configuration).
	Watchdog des.Time
	// SafeStopDecel is the safe-stop braking magnitude (default 6).
	SafeStopDecel float64
	// SpeedGain is the speed-tracking gain (default 2).
	SpeedGain float64
}

// NewRemoteVehicle registers the vehicle's radio and returns the
// teleoperation executor.
func NewRemoteVehicle(cfg RemoteVehicleConfig) (*RemoteVehicle, error) {
	switch {
	case cfg.Kernel == nil:
		return nil, errors.New("teleop: Kernel is required")
	case cfg.Air == nil:
		return nil, errors.New("teleop: Air is required")
	case cfg.Vehicle == nil:
		return nil, errors.New("teleop: Vehicle is required")
	case cfg.Watchdog < 0:
		return nil, errors.New("teleop: negative watchdog")
	}
	laneY := cfg.LaneY
	if laneY == nil {
		laneY = func(lane int) float64 { return (float64(lane) + 0.5) * 3.2 }
	}
	safeDecel := cfg.SafeStopDecel
	if safeDecel <= 0 {
		safeDecel = 6
	}
	gain := cfg.SpeedGain
	if gain <= 0 {
		gain = 2
	}
	rv := &RemoteVehicle{
		k:         cfg.Kernel,
		veh:       cfg.Vehicle,
		watchdog:  cfg.Watchdog,
		safeDecel: safeDecel,
		gain:      gain,
	}
	radio, err := cfg.Air.AddRadio(cfg.Vehicle.Spec.ID, func() geo.Vec {
		return geo.Vec{X: rv.veh.State.Pos, Y: laneY(rv.veh.State.Lane)}
	}, rv.handleRx)
	if err != nil {
		return nil, err
	}
	rv.radio = radio
	return rv, nil
}

// Vehicle returns the driven vehicle.
func (rv *RemoteVehicle) Vehicle() *vehicle.Vehicle { return rv.veh }

// Received reports accepted commands.
func (rv *RemoteVehicle) Received() uint64 { return rv.received }

// SafeStops reports control steps spent in watchdog safe-stop.
func (rv *RemoteVehicle) SafeStops() uint64 { return rv.safeStops }

// LastCommandAge returns the staleness of the newest accepted command,
// or des.MaxTime when none arrived yet.
func (rv *RemoteVehicle) LastCommandAge() des.Time {
	if !rv.hasCmd {
		return des.MaxTime
	}
	return rv.k.Now().Sub(rv.lastRxAt)
}

func (rv *RemoteVehicle) handleRx(f mac.Frame, meta nic.RxMeta) {
	cmd, ok := f.Payload.(Command)
	if !ok {
		return
	}
	// Reject commands older than the newest accepted one (a delayed
	// frame overtaken by a fresh command must not roll the state back).
	if rv.hasCmd && cmd.SentAt < rv.lastCmd.SentAt {
		return
	}
	rv.lastCmd = cmd
	rv.lastRxAt = meta.RxAt
	rv.hasCmd = true
	rv.received++
}

// ControlStep issues the vehicle's acceleration command; register it as
// a traffic pre-step hook.
func (rv *RemoteVehicle) ControlStep(now des.Time, _ float64) {
	if !rv.hasCmd {
		rv.veh.Command(0)
		return
	}
	if rv.watchdog > 0 && now.Sub(rv.lastRxAt) > rv.watchdog {
		// Commands stale: controlled stop.
		rv.safeStops++
		rv.veh.Command(-rv.safeDecel)
		return
	}
	cmd := rv.lastCmd
	if cmd.Brake {
		d := cmd.BrakeDecel
		if d <= 0 {
			d = rv.safeDecel
		}
		rv.veh.Command(-d)
		return
	}
	rv.veh.Command(rv.gain * (cmd.TargetSpeed - rv.veh.State.Speed))
}
