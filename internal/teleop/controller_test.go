package teleop

import (
	"testing"

	"comfase/internal/platoon"
	"comfase/internal/sim/des"
)

func predState(pos, speed float64, at des.Time) platoon.KinState {
	return platoon.KinState{Pos: pos, Speed: speed, Length: 4, Time: at, Valid: true}
}

func selfSnap(pos, speed float64) platoon.Snapshot {
	return platoon.Snapshot{Pos: pos, Speed: speed, Length: 4}
}

func TestDriveControllerTracksLeader(t *testing.T) {
	c := DefaultDrive(0.5)
	if c.Name() != "TELEOP" {
		t.Fatalf("Name = %q", c.Name())
	}
	// Fresh command, correct gap, matched speed: no correction.
	// Gap = predPos - predLength - selfPos = 29 - 4 - 20 = 5 = DesiredGap.
	u := c.Update(0.01, selfSnap(20, 20), platoon.KinState{}, predState(29, 20, 0))
	if u != 0 {
		t.Errorf("steady state u = %v, want 0", u)
	}
	// Too-small gap commands deceleration; too-large commands acceleration.
	if u := c.Update(0.01, selfSnap(24, 20), platoon.KinState{}, predState(29, 20, 0)); u >= 0 {
		t.Errorf("closing gap u = %v, want < 0", u)
	}
	if u := c.Update(0.01, selfSnap(10, 20), platoon.KinState{}, predState(29, 20, 0)); u <= 0 {
		t.Errorf("opened gap u = %v, want > 0", u)
	}
}

func TestDriveControllerWatchdog(t *testing.T) {
	c := DefaultDrive(0.5)
	// Advance the internal clock 1 s past a command stamped at t=0: the
	// 0.5 s watchdog must fire and command the safe-stop deceleration.
	var u float64
	for i := 0; i < 100; i++ {
		u = c.Update(0.01, selfSnap(20, 20), platoon.KinState{}, predState(29, 20, 0))
	}
	if u != -c.SafeDecel {
		t.Errorf("stale-command u = %v, want safe stop %v", u, -c.SafeDecel)
	}
	// A fresh command (stamped at the controller's current clock) clears it.
	u = c.Update(0.01, selfSnap(20, 20), platoon.KinState{}, predState(29, 20, des.FromSeconds(1.01)))
	if u == -c.SafeDecel {
		t.Error("fresh command still safe-stopping")
	}
	// Watchdog 0 disables the staleness bound entirely.
	unprotected := DefaultDrive(0)
	for i := 0; i < 100; i++ {
		u = unprotected.Update(0.01, selfSnap(20, 20), platoon.KinState{}, predState(29, 20, 0))
	}
	if u == -unprotected.SafeDecel {
		t.Error("watchdog 0 still fired a safe stop")
	}
}

func TestDriveControllerNoCommand(t *testing.T) {
	c := DefaultDrive(0.5)
	if u := c.Update(0.01, selfSnap(20, 20), platoon.KinState{}, platoon.KinState{}); u != 0 {
		t.Errorf("no-command u = %v, want 0 (coast)", u)
	}
}

func TestDriveControllerTargetSpeedNonNegative(t *testing.T) {
	// A predecessor far behind the desired gap must never command the
	// follower to reverse: target speed clamps at zero.
	c := DefaultDrive(0)
	u := c.Update(0.01, selfSnap(100, 5), platoon.KinState{}, predState(20, 0, 0))
	// Target speed 0 → u = Gain*(0 - 5) = -10.
	if want := c.Gain * -5; u != want {
		t.Errorf("reversing-gap u = %v, want %v", u, want)
	}
}

// TestDriveControllerStateRoundTrip: the checkpoint fork path snapshots
// controller state; the staleness clock must survive the round trip.
func TestDriveControllerStateRoundTrip(t *testing.T) {
	var _ platoon.StatefulController = (*DriveController)(nil)
	c := DefaultDrive(0.5)
	for i := 0; i < 50; i++ {
		c.Update(0.01, selfSnap(20, 20), platoon.KinState{}, predState(29, 20, 0))
	}
	st := c.SaveState()
	if st.U < 0.499 || st.U > 0.501 { // 50 float steps of 0.01 accumulate rounding
		t.Fatalf("saved clock = %v, want ~0.5", st.U)
	}
	fresh := DefaultDrive(0.5)
	fresh.LoadState(st)
	// One more step past the 0.5 s watchdog with a command stamped at 0.
	if u := fresh.Update(0.01, selfSnap(20, 20), platoon.KinState{}, predState(29, 20, 0)); u != -fresh.SafeDecel {
		t.Errorf("restored controller u = %v, want safe stop", u)
	}
	fresh.Reset()
	if fresh.SaveState().U != 0 {
		t.Error("Reset did not clear the staleness clock")
	}
}
