package scenario

import (
	"bytes"
	"errors"
	"testing"

	"comfase/internal/sim/des"
	"comfase/internal/trace"
)

// buildToFork builds the 5 s paper scenario on w, starts it and runs it
// to the fork point.
func buildToFork(t *testing.T, w *Workspace, fork des.Time) *Simulation {
	t.Helper()
	ts := PaperScenario()
	ts.TotalSimTime = 5 * des.Second
	sim, err := w.Build(ts, PaperCommModel(), 42, nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := sim.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sim.RunUntil(fork); err != nil {
		t.Fatalf("RunUntil(%v): %v", fork, err)
	}
	return sim
}

// TestCheckpointForkReplaysSuffix pins the workspace-level forking
// contract: restore + run-to-horizon replays the original suffix of the
// simulation byte for byte (full trace comparison).
func TestCheckpointForkReplaysSuffix(t *testing.T) {
	fork := 2 * des.Second
	w := NewWorkspace()
	sim := buildToFork(t, w, fork)
	log := trace.NewFullLog(sim.VehicleIDs())
	sim.AddRecorder(log)

	var cp Checkpoint
	if err := w.Snapshot(&cp); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if cp.Owner() != w {
		t.Fatal("checkpoint owner not recorded")
	}

	if err := sim.RunUntil(sim.TotalSimTime()); err != nil {
		t.Fatalf("first suffix: %v", err)
	}
	var want bytes.Buffer
	if err := log.WriteCSV(&want); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}

	for i := 0; i < 3; i++ {
		if err := w.Restore(&cp); err != nil {
			t.Fatalf("Restore %d: %v", i, err)
		}
		// Recorders are runtime wiring, not checkpointed state: a fresh
		// log sees exactly the post-fork samples.
		forkLog := trace.NewFullLog(sim.VehicleIDs())
		sim.AddRecorder(forkLog)
		if err := sim.RunUntil(sim.TotalSimTime()); err != nil {
			t.Fatalf("restored suffix %d: %v", i, err)
		}
		var got bytes.Buffer
		if err := forkLog.WriteCSV(&got); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		// The restored log restarts empty, so compare only the suffix
		// rows past the fork point: they must match the original run's.
		if !bytes.HasSuffix(want.Bytes(), suffixRows(t, got.Bytes())) {
			t.Fatalf("restored suffix %d diverged from original run", i)
		}
	}
}

// suffixRows strips the CSV header, returning just the data rows.
func suffixRows(t *testing.T, csv []byte) []byte {
	t.Helper()
	i := bytes.IndexByte(csv, '\n')
	if i < 0 {
		t.Fatal("trace CSV has no header")
	}
	return csv[i+1:]
}

// TestCheckpointOwnershipErrors pins the foreign/stale/empty rejection
// paths: a checkpoint is only valid in place, on the build it was taken
// from.
func TestCheckpointOwnershipErrors(t *testing.T) {
	fork := des.Second
	w := NewWorkspace()
	buildToFork(t, w, fork)
	var cp Checkpoint
	if err := w.Snapshot(&cp); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	other := NewWorkspace()
	buildToFork(t, other, fork)
	if err := other.Restore(&cp); !errors.Is(err, ErrForeignCheckpoint) {
		t.Errorf("foreign restore err = %v, want ErrForeignCheckpoint", err)
	}

	var empty Checkpoint
	if err := w.Restore(&empty); err == nil {
		t.Error("restore from empty checkpoint succeeded")
	}

	// Rebuilding the workspace advances its epoch: the old checkpoint
	// references the previous build's object graph and must be rejected.
	buildToFork(t, w, fork)
	if err := w.Restore(&cp); !errors.Is(err, ErrStaleCheckpoint) {
		t.Errorf("stale restore err = %v, want ErrStaleCheckpoint", err)
	}
}

// TestCheckpointRestoreAllocs pins the steady-state fork path end to
// end: once the checkpoint's buffers have grown, Restore allocates
// nothing.
func TestCheckpointRestoreAllocs(t *testing.T) {
	w := NewWorkspace()
	buildToFork(t, w, 2*des.Second)
	var cp Checkpoint
	if err := w.Snapshot(&cp); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := w.Restore(&cp); err != nil {
			t.Fatalf("Restore: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("Restore allocated %.1f per call, want 0", allocs)
	}
}
