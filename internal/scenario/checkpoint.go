package scenario

import (
	"errors"
	"fmt"

	"comfase/internal/nic"
	"comfase/internal/platoon"
	"comfase/internal/sim/des"
	"comfase/internal/traffic"
)

// Errors returned by the checkpoint API.
var (
	// ErrForeignCheckpoint marks a restore attempted on a workspace other
	// than the one the checkpoint was taken from.
	ErrForeignCheckpoint = errors.New("scenario: checkpoint belongs to a different workspace")
	// ErrStaleCheckpoint marks a restore attempted after the workspace was
	// rebuilt: the snapshot references the previous build's object graph.
	ErrStaleCheckpoint = errors.New("scenario: checkpoint predates the workspace's current build")
	// ErrNotCheckpointable marks a simulation whose state cannot be fully
	// captured (shared fading RNG or a custom stateful controller).
	ErrNotCheckpointable = errors.New("scenario: simulation state cannot be checkpointed")
)

// Checkpoint is a restorable snapshot of a built, running simulation —
// the fork point of prefix-checkpoint campaigns. It composes the snapshot
// state of every stateful layer: the event kernel, the radio medium, the
// traffic simulator and the platoon members (vehicles included).
//
// A Checkpoint is bound to the Workspace and Build it was taken from
// (kernel event handlers are closures into that build's object graph), so
// Restore is only valid in place: same workspace, same build epoch. The
// zero value is ready for Snapshot; all internal buffers are reused
// across Snapshot/Restore cycles, so the steady-state fork path allocates
// nothing.
type Checkpoint struct {
	owner   *Workspace
	epoch   uint64
	kernel  des.KernelState
	air     nic.AirState
	traffic traffic.SimState
	members []platoon.MemberState
	started bool
}

// Owner returns the workspace this checkpoint was taken from (nil before
// the first Snapshot).
func (cp *Checkpoint) Owner() *Workspace { return cp.owner }

// Checkpointable reports whether the current build's state can be fully
// captured by Snapshot. It is false when the channel uses a fading model
// (the fading RNG is shared configuration, not per-workspace state) or
// when a custom follower controller does not implement
// platoon.StatefulController. Non-checkpointable simulations must run on
// the fresh-build path.
func (w *Workspace) Checkpointable() bool {
	if w.sim.comm.Channel.Fading != nil {
		return false
	}
	for _, m := range w.sim.Members {
		if !m.Checkpointable() {
			return false
		}
	}
	return true
}

// Snapshot captures the full simulation state into cp, reusing cp's
// buffers. The simulation must have been built (and typically started and
// advanced to the fork point) by this workspace's latest Build.
func (w *Workspace) Snapshot(cp *Checkpoint) error {
	if !w.Checkpointable() {
		return ErrNotCheckpointable
	}
	cp.owner = w
	cp.epoch = w.epoch
	w.kernel.Snapshot(&cp.kernel)
	if err := w.air.SaveState(&cp.air); err != nil {
		return err
	}
	w.traffic.SaveState(&cp.traffic)
	members := w.sim.Members
	if cap(cp.members) < len(members) {
		cp.members = make([]platoon.MemberState, len(members))
	}
	cp.members = cp.members[:len(members)]
	for i, m := range members {
		m.SaveState(&cp.members[i])
	}
	cp.started = w.sim.started
	return nil
}

// Restore rewinds the workspace's simulation to the checkpointed instant,
// in place. It must run on the same workspace and build epoch the
// snapshot was taken under.
//
// Runtime knobs are deliberately outside the snapshot: callers reapply
// the kernel's interrupt check (Simulation.AttachContext) and event
// budget BEFORE Restore, exactly as the fresh-build path applies them
// before running — Restore then rewinds the kernel's poll phase so forked
// runs hit deterministic abort points identical to fresh ones.
//
// Event IDs issued after the snapshot are permanently invalidated by the
// rewind; retaining one across Restore is a caller bug the kernel's
// generation check turns into a failed Cancel rather than corruption.
func (w *Workspace) Restore(cp *Checkpoint) error {
	if cp.owner == nil {
		return errors.New("scenario: restore from empty checkpoint")
	}
	if cp.owner != w {
		return ErrForeignCheckpoint
	}
	if cp.epoch != w.epoch {
		return fmt.Errorf("%w: checkpoint epoch %d, workspace epoch %d",
			ErrStaleCheckpoint, cp.epoch, w.epoch)
	}
	if err := w.kernel.Restore(&cp.kernel); err != nil {
		return err
	}
	if err := w.air.LoadState(&cp.air); err != nil {
		return err
	}
	if err := w.traffic.LoadState(&cp.traffic); err != nil {
		return err
	}
	if len(cp.members) != len(w.sim.Members) {
		return fmt.Errorf("scenario: restore with %d members, snapshot had %d",
			len(w.sim.Members), len(cp.members))
	}
	for i, m := range w.sim.Members {
		m.LoadState(&cp.members[i])
	}
	w.sim.started = cp.started
	return nil
}
