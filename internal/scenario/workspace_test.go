package scenario

import (
	"bytes"
	"testing"

	"comfase/internal/sim/des"
	"comfase/internal/trace"
)

// runCSV builds and runs a simulation to its horizon and returns the full
// trace as CSV bytes.
func runCSV(t *testing.T, sim *Simulation) []byte {
	t.Helper()
	log := trace.NewFullLog(sim.VehicleIDs())
	sim.AddRecorder(log)
	if err := sim.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sim.RunUntil(sim.TotalSimTime()); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	var buf bytes.Buffer
	if err := log.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return buf.Bytes()
}

// TestWorkspaceReuseReplaysFreshBuild pins the determinism contract of
// Workspace: a build from a reused workspace must replay a build from a
// fresh workspace byte-for-byte, even after the workspace ran unrelated
// experiments in between.
func TestWorkspaceReuseReplaysFreshBuild(t *testing.T) {
	ts := PaperScenario()
	ts.TotalSimTime = 5 * des.Second
	cm := PaperCommModel()
	const seed = 42

	fresh, err := Build(ts, cm, seed, nil)
	if err != nil {
		t.Fatalf("fresh Build: %v", err)
	}
	want := runCSV(t, fresh)

	w := NewWorkspace()

	// Pollute the workspace with a different experiment first: other
	// seed, fewer vehicles, different horizon.
	other := ts
	other.NrVehicles = 2
	other.TotalSimTime = 2 * des.Second
	polluted, err := w.Build(other, cm, seed+1, nil)
	if err != nil {
		t.Fatalf("polluting Build: %v", err)
	}
	_ = runCSV(t, polluted)

	for i := 0; i < 3; i++ {
		sim, err := w.Build(ts, cm, seed, nil)
		if err != nil {
			t.Fatalf("reused Build %d: %v", i, err)
		}
		got := runCSV(t, sim)
		if !bytes.Equal(got, want) {
			t.Fatalf("reused workspace build %d diverged from fresh build (%d vs %d bytes)",
				i, len(got), len(want))
		}
	}
}

// TestWorkspaceVehicleCountChanges exercises the member/vehicle pools
// across builds with growing and shrinking platoons.
func TestWorkspaceVehicleCountChanges(t *testing.T) {
	ts := PaperScenario()
	ts.TotalSimTime = des.Second
	cm := PaperCommModel()
	w := NewWorkspace()
	for _, n := range []int{4, 2, 6, 1, 4} {
		cfg := ts
		cfg.NrVehicles = n
		sim, err := w.Build(cfg, cm, 7, nil)
		if err != nil {
			t.Fatalf("Build with %d vehicles: %v", n, err)
		}
		if got := len(sim.Members); got != n {
			t.Fatalf("got %d members, want %d", got, n)
		}
		if got := len(sim.Traffic.Vehicles()); got != n {
			t.Fatalf("got %d vehicles, want %d", got, n)
		}
		for i, m := range sim.Members {
			if want := VehicleID(i + 1); m.ID() != want {
				t.Fatalf("member %d has ID %q, want %q", i, m.ID(), want)
			}
		}
		if err := sim.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		if err := sim.RunUntil(cfg.TotalSimTime); err != nil {
			t.Fatalf("RunUntil: %v", err)
		}
	}
}
