package scenario

import (
	"fmt"

	"comfase/internal/nic"
	"comfase/internal/platoon"
	"comfase/internal/roadnet"
	"comfase/internal/sim/des"
	"comfase/internal/trace"
	"comfase/internal/traffic"
	"comfase/internal/vehicle"
)

// Workspace retains the heavyweight simulation components — kernel,
// traffic simulator, radio medium, platoon members, vehicles and the
// road network — across experiment builds. A campaign worker keeps one
// Workspace and calls Build per experiment: every component is reset in
// place instead of reallocated, so consecutive experiments run with a
// near-constant memory footprint.
//
// Builds from a reused Workspace are bit-for-bit identical to builds
// from a fresh one: every Reset restores exactly the state its
// constructor leaves behind, and all random streams are reseeded from
// (seed, name). The determinism suite pins this equivalence.
//
// A Workspace is not safe for concurrent use, and a Simulation returned
// by Build is invalidated by the next Build on the same Workspace. If
// Build returns an error the Workspace may be partially reset and must
// be discarded.
type Workspace struct {
	kernel  *des.Kernel
	network *roadnet.Network
	road    roadnet.RoadSpec
	haveNet bool
	traffic *traffic.Simulator
	air     *nic.Air
	members []*platoon.Member
	tracker traffic.SpeedTracker
	sim     Simulation

	// epoch counts Builds on this workspace. A Checkpoint records the
	// epoch it was taken under, and Restore rejects checkpoints from a
	// different build: kernel handlers are closures into the build-time
	// object graph, so a snapshot is only meaningful in place, on the
	// exact simulation instance it was taken from.
	epoch uint64
}

// NewWorkspace returns an empty workspace; the first Build populates it.
func NewWorkspace() *Workspace { return &Workspace{} }

// Build assembles a Simulation exactly like the package-level Build, but
// reuses the workspace's retained components. The road network is kept
// when the RoadSpec is unchanged (it is immutable once constructed);
// everything else is reset in place.
func (w *Workspace) Build(ts TrafficScenario, cm CommModel, seed uint64, factory ControllerFactory) (*Simulation, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if err := cm.Validate(); err != nil {
		return nil, err
	}
	if factory == nil {
		factory = DefaultControllers()
	}
	w.epoch++

	if w.kernel == nil {
		w.kernel = des.NewKernel()
	} else {
		w.kernel.Reset()
	}
	k := w.kernel

	if !w.haveNet || w.road != ts.Road {
		net, err := roadnet.NewNetwork(ts.Road)
		if err != nil {
			return nil, err
		}
		w.network = net
		w.road = ts.Road
		w.haveNet = true
	}
	net := w.network

	tcfg := traffic.Config{Kernel: k, Network: net, StepLength: ts.StepLength, Invariants: ts.Invariants}
	if w.traffic == nil {
		sim, err := traffic.NewSimulator(tcfg)
		if err != nil {
			return nil, err
		}
		w.traffic = sim
	} else if err := w.traffic.Reset(tcfg); err != nil {
		return nil, err
	}
	sim := w.traffic

	acfg := nic.Config{Kernel: k, Channel: cm.Channel, Schedule: cm.Schedule, Seed: seed}
	if w.air == nil {
		air, err := nic.NewAir(acfg)
		if err != nil {
			return nil, err
		}
		w.air = air
	} else if err := w.air.Reset(acfg); err != nil {
		return nil, err
	}
	air := w.air

	s := &w.sim
	s.Kernel = k
	s.Network = net
	s.Traffic = sim
	s.Air = air
	s.scenario = ts
	s.comm = cm
	for i := range s.recs {
		s.recs[i] = nil
	}
	s.recs = s.recs[:0]
	s.started = false
	s.dt = sim.StepLength().Seconds()
	for i := range s.Members {
		s.Members[i] = nil
	}
	s.Members = s.Members[:0]
	// Pre-size the retained post-step sample buffer for this build's
	// member count, so pooled workspaces cycling between scenarios of
	// different platoon sizes never regrow it mid-run.
	if cap(s.states) < ts.NrVehicles {
		s.states = make([]trace.VehicleSample, ts.NrVehicles)
	}
	s.states = s.states[:0]

	params := platoon.Params{
		ID:             "platoon.0",
		Spacing:        5,
		BeaconInterval: cm.BeaconInterval,
		PayloadBits:    cm.PacketBits,
		AC:             cm.AC,
	}
	w.tracker = traffic.SpeedTracker{
		Maneuver: ts.Maneuver,
		Gain:     ts.TrackerGain,
		LagComp:  ts.TrackerLagComp,
	}
	tracker := &w.tracker

	v0 := ts.Maneuver.TargetSpeed(0)
	a0 := ts.Maneuver.FeedforwardAccel(0)
	lane, err := net.Lane(ts.Road.ID, ts.Lane)
	if err != nil {
		return nil, err
	}

	for i := 0; i < ts.NrVehicles; i++ {
		spec := ts.VehicleTemplate
		spec.ID = VehicleID(i + 1)
		gapStride := params.Spacing + spec.Length
		st := vehicle.State{
			Pos:   ts.LeaderStartPos - float64(i)*gapStride,
			Speed: v0,
			Accel: a0,
			Lane:  ts.Lane,
		}
		veh, err := sim.AddVehicle(spec, st)
		if err != nil {
			return nil, err
		}
		var ctrl platoon.Controller
		var radar func() (float64, float64, bool)
		if i > 0 {
			ctrl = factory(i)
			if ctrl == nil {
				return nil, fmt.Errorf("scenario: controller factory returned nil for index %d", i)
			}
			// Radar measures ground truth against the predecessor, like
			// Plexe's SUMO-backed radar sensor.
			pred, self := sim.Vehicles()[i-1], veh
			radar = func() (float64, float64, bool) {
				gap := pred.State.Rear(pred.Spec.Length) - self.State.Pos
				return gap, self.State.Speed - pred.State.Speed, true
			}
		}
		mc := platoon.MemberConfig{
			Kernel:     k,
			Vehicle:    veh,
			Air:        air,
			Params:     params,
			Index:      i,
			Controller: ctrl,
			Leader:     tracker,
			LaneY:      func(int) float64 { return lane.CenterY },
			Radar:      radar,
			AEB:        ts.AEB,
		}
		var member *platoon.Member
		if i < len(w.members) {
			member = w.members[i]
			if err := member.Reset(mc); err != nil {
				return nil, err
			}
		} else {
			member, err = platoon.NewMember(mc)
			if err != nil {
				return nil, err
			}
			w.members = append(w.members, member)
		}
		s.Members = append(s.Members, member)
	}

	// Seed follower caches with ground truth at t=0: the platoon is
	// already formed when the experiment window opens.
	leaderVeh := s.Members[0].Vehicle()
	for i := 1; i < len(s.Members); i++ {
		predVeh := s.Members[i-1].Vehicle()
		s.Members[i].Seed(kinOf(leaderVeh), kinOf(predVeh))
	}

	sim.OnPreStep(s.preStep)
	sim.OnPostStep(s.postStep)
	return s, nil
}
