package scenario

import (
	"math"
	"testing"

	"comfase/internal/platoon"
	"comfase/internal/sim/des"
	"comfase/internal/trace"
)

func TestPaperScenarioValid(t *testing.T) {
	if err := PaperScenario().Validate(); err != nil {
		t.Errorf("paper scenario invalid: %v", err)
	}
	if err := PaperCommModel().Validate(); err != nil {
		t.Errorf("paper comm model invalid: %v", err)
	}
}

func TestValidateCatchesBrokenConfigs(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*TrafficScenario)
	}{
		{name: "bad road", mutate: func(s *TrafficScenario) { s.Road.Lanes = 0 }},
		{name: "bad vehicle", mutate: func(s *TrafficScenario) { s.VehicleTemplate.Length = 0 }},
		{name: "no vehicles", mutate: func(s *TrafficScenario) { s.NrVehicles = 0 }},
		{name: "nil maneuver", mutate: func(s *TrafficScenario) { s.Maneuver = nil }},
		{name: "zero time", mutate: func(s *TrafficScenario) { s.TotalSimTime = 0 }},
		{name: "bad lane", mutate: func(s *TrafficScenario) { s.Lane = 9 }},
		{name: "start off road", mutate: func(s *TrafficScenario) { s.LeaderStartPos = 1e6 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := PaperScenario()
			tt.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Error("invalid scenario accepted")
			}
		})
	}

	commTests := []struct {
		name   string
		mutate func(*CommModel)
	}{
		{name: "bad channel", mutate: func(c *CommModel) { c.Channel.PathLoss = nil }},
		{name: "bad schedule", mutate: func(c *CommModel) { c.Schedule.Mode = 0 }},
		{name: "zero packet", mutate: func(c *CommModel) { c.PacketBits = 0 }},
		{name: "zero beacon", mutate: func(c *CommModel) { c.BeaconInterval = 0 }},
		{name: "bad ac", mutate: func(c *CommModel) { c.AC = 0 }},
	}
	for _, tt := range commTests {
		t.Run(tt.name, func(t *testing.T) {
			c := PaperCommModel()
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("invalid comm model accepted")
			}
		})
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	bad := PaperScenario()
	bad.NrVehicles = 0
	if _, err := Build(bad, PaperCommModel(), 1, nil); err == nil {
		t.Error("invalid scenario built")
	}
	badComm := PaperCommModel()
	badComm.PacketBits = 0
	if _, err := Build(PaperScenario(), badComm, 1, nil); err == nil {
		t.Error("invalid comm model built")
	}
}

func TestVehicleNaming(t *testing.T) {
	if VehicleID(2) != "vehicle.2" {
		t.Errorf("VehicleID(2) = %q", VehicleID(2))
	}
	sim, err := Build(PaperScenario(), PaperCommModel(), 1, nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ids := sim.VehicleIDs()
	want := []string{"vehicle.1", "vehicle.2", "vehicle.3", "vehicle.4"}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("IDs = %v, want %v", ids, want)
		}
	}
}

func TestInitialPlatoonGeometry(t *testing.T) {
	sim, err := Build(PaperScenario(), PaperCommModel(), 1, nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for i := 1; i < len(sim.Members); i++ {
		front := sim.Members[i-1].Vehicle()
		back := sim.Members[i].Vehicle()
		gap := front.State.Rear(front.Spec.Length) - back.State.Pos
		if math.Abs(gap-5) > 1e-9 {
			t.Errorf("initial gap %d = %v, want 5 m", i, gap)
		}
	}
}

// TestGoldenRunStability is the Fig. 4 acceptance test: a full 60 s
// attack-free run must keep the platoon collision-free with ~5 m gaps,
// sinusoidal speed for every member, and a maximum deceleration near the
// paper's golden-run value of 1.53 m/s^2.
func TestGoldenRunStability(t *testing.T) {
	sim, err := Build(PaperScenario(), PaperCommModel(), 1, nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	log := trace.NewFullLog(sim.VehicleIDs())
	sim.AddRecorder(log)

	var minGap, maxGap = math.Inf(1), math.Inf(-1)
	sim.Traffic.OnPostStep(func(now des.Time) {
		if now < 10*des.Second {
			return // let transients settle
		}
		for i := 1; i < len(sim.Members); i++ {
			front := sim.Members[i-1].Vehicle()
			back := sim.Members[i].Vehicle()
			gap := front.State.Rear(front.Spec.Length) - back.State.Pos
			minGap = math.Min(minGap, gap)
			maxGap = math.Max(maxGap, gap)
		}
	})

	if err := sim.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sim.RunUntil(60 * des.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}

	if cs := sim.Traffic.Collisions(); len(cs) != 0 {
		t.Fatalf("golden run had collisions: %v", cs)
	}
	if minGap < 2 || maxGap > 8 {
		t.Errorf("gap range [%v, %v] m, want near 5 m", minGap, maxGap)
	}
	maxDecel := log.MaxDeceleration()
	if maxDecel < 1.0 || maxDecel > 2.0 {
		t.Errorf("golden max deceleration = %v m/s^2, want ~1.53", maxDecel)
	}

	// Every vehicle's speed must oscillate around the base speed.
	for v := 0; v < log.NumVehicles(); v++ {
		var minSpd, maxSpd = math.Inf(1), math.Inf(-1)
		for i := 0; i < log.Len(); i++ {
			if log.Time(i) < 10*des.Second {
				continue
			}
			s := log.At(i, v).Speed
			minSpd = math.Min(minSpd, s)
			maxSpd = math.Max(maxSpd, s)
		}
		if minSpd > 27 || maxSpd < 28.5 {
			t.Errorf("vehicle %d speed range [%v, %v], want sinusoid around 27.78",
				v+1, minSpd, maxSpd)
		}
	}

	// Beacons flowed: every follower kept receiving fresh state.
	for i, m := range sim.Members {
		if i == 0 {
			continue
		}
		if m.RxCount() < 500 {
			t.Errorf("member %d accepted only %d beacons", i+1, m.RxCount())
		}
		age := 60*des.Second - m.LeaderState().Time
		if age > des.Second {
			t.Errorf("member %d leader cache is %v old at sim end", i+1, age)
		}
	}
}

func TestGoldenRunDeterminism(t *testing.T) {
	run := func() (float64, uint64) {
		sim, err := Build(PaperScenario(), PaperCommModel(), 7, nil)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		sum := trace.NewSummary(4, nil)
		sim.AddRecorder(sum)
		if err := sim.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		if err := sim.RunUntil(30 * des.Second); err != nil {
			t.Fatalf("RunUntil: %v", err)
		}
		return sum.MaxDecelOverall(), sim.Air.Stats().Deliveries
	}
	d1, n1 := run()
	d2, n2 := run()
	if d1 != d2 || n1 != n2 {
		t.Errorf("runs diverged: (%v,%d) vs (%v,%d)", d1, n1, d2, n2)
	}
}

func TestStartTwiceErrors(t *testing.T) {
	sim, err := Build(PaperScenario(), PaperCommModel(), 1, nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := sim.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sim.Start(); err == nil {
		t.Error("double Start accepted")
	}
}

func TestCustomControllerFactoryUsed(t *testing.T) {
	sim, err := Build(PaperScenario(), PaperCommModel(), 1,
		func(int) platoon.Controller { return platoon.DefaultACC() })
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for i, m := range sim.Members {
		if i == 0 {
			if m.Controller() != nil {
				t.Error("leader has a controller")
			}
			continue
		}
		if m.Controller().Name() != "ACC" {
			t.Errorf("member %d controller = %s, want ACC", i, m.Controller().Name())
		}
	}
}

func TestNilControllerFromFactoryRejected(t *testing.T) {
	if _, err := Build(PaperScenario(), PaperCommModel(), 1,
		func(int) platoon.Controller { return nil }); err == nil {
		t.Error("nil controller accepted")
	}
}
