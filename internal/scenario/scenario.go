// Package scenario implements Step-1 of the ComFASE execution flow
// (Algorithm 1): the TrafficScenario and CommModel configuration objects
// and the builder that assembles a runnable simulation from them —
// road network, traffic simulator, shared radio medium and platooning
// members, all on one discrete-event kernel.
package scenario

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"comfase/internal/mac"
	"comfase/internal/nic"
	"comfase/internal/phy"
	"comfase/internal/platoon"
	"comfase/internal/roadnet"
	"comfase/internal/safety"
	"comfase/internal/sim/des"
	"comfase/internal/trace"
	"comfase/internal/traffic"
	"comfase/internal/vehicle"
	"comfase/internal/wave1609"
)

// TrafficScenario mirrors setScenario(roadFeatures, vehicleFeatures,
// nrVehicles, scenarioManeuver, totalSimTime) of Algorithm 1.
type TrafficScenario struct {
	// Road is the roadFeatures parameter.
	Road roadnet.RoadSpec
	// VehicleTemplate is the vehicleFeatures parameter; every platoon
	// member shares it (the paper uses 4 identical vehicles). IDs are
	// assigned per member as "vehicle.<1-based index>".
	VehicleTemplate vehicle.Spec
	// NrVehicles is the platoon size (paper: 4).
	NrVehicles int
	// Maneuver is the scenarioManeuver driving the leader.
	Maneuver traffic.Maneuver
	// TotalSimTime bounds the simulation (paper: 60 s).
	TotalSimTime des.Time
	// Lane is the lane the platoon drives on.
	Lane int
	// LeaderStartPos is the leader's initial front-bumper position (m).
	LeaderStartPos float64
	// StepLength is the dynamics/control period (default 10 ms).
	StepLength des.Time
	// TrackerGain and TrackerLagComp parameterise the leader's speed
	// tracker (see traffic.SpeedTracker).
	TrackerGain    float64
	TrackerLagComp float64
	// AEB, when non-nil, equips every follower with an autonomous
	// emergency-braking monitor on its radar — the redundant safety
	// mechanism the paper's future-work section proposes. The paper's
	// demonstration scenario runs without one.
	AEB *safety.AEB
	// Invariants enables the per-step runtime sanity checks of
	// internal/invariant in the traffic simulator (finite state,
	// position monotonicity, handled overlaps). Off by default: the
	// checks cost a few comparisons per vehicle per step, and campaign
	// runs enable them through core.EngineConfig.Invariants.
	Invariants bool
}

// Validate reports the first configuration problem, or nil.
func (t TrafficScenario) Validate() error {
	if err := t.Road.Validate(); err != nil {
		return err
	}
	if err := t.VehicleTemplate.Validate(); err != nil {
		return err
	}
	switch {
	case t.NrVehicles < 1:
		return errors.New("scenario: need at least one vehicle")
	case t.Maneuver == nil:
		return errors.New("scenario: maneuver is required")
	case t.TotalSimTime <= 0:
		return errors.New("scenario: total sim time must be positive")
	case t.Lane < 0 || t.Lane >= t.Road.Lanes:
		return fmt.Errorf("scenario: lane %d outside road", t.Lane)
	case t.LeaderStartPos < 0 || t.LeaderStartPos > t.Road.Length:
		return errors.New("scenario: leader start position outside road")
	}
	return nil
}

// CommModel mirrors setCommunication(commProtocol, wirelessModel,
// packetSize, beaconingTime) of Algorithm 1. The commProtocol (IEEE
// 802.11p + IEEE 1609.4) is embodied by the Channel + Schedule pair.
type CommModel struct {
	// Channel is the analog/PHY configuration (wirelessModel and
	// friends).
	Channel phy.ChannelConfig
	// Schedule is the IEEE 1609.4 channel-access schedule.
	Schedule wave1609.Schedule
	// PacketBits is the packetSize (paper: 200 bits).
	PacketBits int
	// BeaconInterval is the beaconingTime (paper: 0.1 s).
	BeaconInterval des.Time
	// AC is the EDCA access category of beacons.
	AC mac.AccessCategory
}

// Validate reports the first configuration problem, or nil.
func (c CommModel) Validate() error {
	if err := c.Channel.Validate(); err != nil {
		return err
	}
	if err := c.Schedule.Validate(); err != nil {
		return err
	}
	switch {
	case c.PacketBits <= 0:
		return errors.New("scenario: packet bits must be positive")
	case c.BeaconInterval <= 0:
		return errors.New("scenario: beacon interval must be positive")
	case !c.AC.Valid():
		return errors.New("scenario: invalid access category")
	}
	return nil
}

// PaperManeuver returns the sinusoidal maneuver of the demonstration
// scenario: 0.2 Hz (one 5 s platooning cycle, Fig. 4), peak acceleration
// ~1.53 m/s^2 (the golden-run maximum of §IV-B), phased so the
// low-acceleration benign window of Fig. 7 falls at ~19.4-20.2 s.
func PaperManeuver() traffic.Sinusoidal {
	return traffic.Sinusoidal{
		Base:      27.78,  // 100 km/h, Plexe default platoon speed
		Amplitude: 1.2175, // 1.53 m/s^2 peak at 0.2 Hz
		Frequency: 0.2,    // 5 s cycle: start times 17.0..21.8 cover one cycle
		Phase:     1.05,   // speed minimum at t = 19.8 s (mod 5 s)
	}
}

// PaperScenario returns the TrafficScenario of §IV-A1: a 4-lane, 9400 m
// highway with 90 m/s limit; four identical vehicles (4 m long, 2.5/9
// m/s^2 accel/decel, 50 m/s top speed) driving a sinusoidal maneuver for
// 60 s.
func PaperScenario() TrafficScenario {
	return TrafficScenario{
		Road:            roadnet.PaperHighway(),
		VehicleTemplate: vehicle.PaperCar("template"),
		NrVehicles:      4,
		Maneuver:        PaperManeuver(),
		TotalSimTime:    60 * des.Second,
		Lane:            0,
		LeaderStartPos:  100,
		StepLength:      10 * des.Millisecond,
		TrackerGain:     2,
		TrackerLagComp:  0.5,
	}
}

// PaperCommModel returns the CommModel of §IV-A2: DSRC/WAVE with
// free-space path loss, 200-bit packets, 0.1 s beaconing, continuous CCH
// access.
func PaperCommModel() CommModel {
	return CommModel{
		Channel:        phy.DefaultChannelConfig(),
		Schedule:       wave1609.NewSchedule(wave1609.AccessContinuous),
		PacketBits:     200,
		BeaconInterval: 100 * des.Millisecond,
		AC:             mac.ACVideo,
	}
}

// ControllerFactory builds the follower controller for platoon index i
// (i >= 1). Distinct experiments need distinct controller instances
// because controllers may be stateful.
type ControllerFactory func(i int) platoon.Controller

// DefaultControllers returns a factory producing Plexe-default CACCs,
// the controller of the paper's experiments.
func DefaultControllers() ControllerFactory {
	return func(int) platoon.Controller { return platoon.DefaultCACC() }
}

// Simulation is a fully assembled, ready-to-run experiment instance.
type Simulation struct {
	// Kernel is the event kernel; core.Engine drives it phase by phase.
	Kernel *des.Kernel
	// Network is the road network.
	Network *roadnet.Network
	// Traffic is the vehicle dynamics simulator.
	Traffic *traffic.Simulator
	// Air is the shared radio medium (attack injection point).
	Air *nic.Air
	// Members are the platoon members, index 0 = leader ("vehicle.1").
	Members []*platoon.Member

	scenario TrafficScenario
	comm     CommModel
	recs     []trace.Recorder
	started  bool

	// dt is the control period in seconds (cached for preStep).
	dt float64
	// states is the retained per-step sample buffer handed to recorders;
	// reusing it keeps the post-step observer allocation-free.
	states []trace.VehicleSample
}

// preStep issues every member's control command; registered as the
// traffic pre-step hook.
func (s *Simulation) preStep(now des.Time) {
	for _, m := range s.Members {
		m.ControlStep(now, s.dt)
	}
}

// postStep samples all vehicles into the retained buffer and feeds the
// recorders; registered as the traffic post-step hook. Recorders must not
// retain the slice across calls (trace.FullLog copies; trace.Summary
// reduces in place).
func (s *Simulation) postStep(now des.Time) {
	if len(s.recs) == 0 {
		return
	}
	if cap(s.states) < len(s.Members) {
		s.states = make([]trace.VehicleSample, len(s.Members))
	}
	s.states = s.states[:len(s.Members)]
	for i, m := range s.Members {
		st := m.Vehicle().State
		s.states[i] = trace.VehicleSample{Pos: st.Pos, Speed: st.Speed, Accel: st.Accel}
	}
	for _, r := range s.recs {
		r.OnSample(now, s.states)
	}
}

// VehicleID returns the conventional ID of the 1-based paper vehicle
// number ("Vehicle 2" -> "vehicle.2").
func VehicleID(n int) string { return "vehicle." + strconv.Itoa(n) }

// Build assembles a Simulation from Step-1 configuration. seed drives all
// stochastic components; identical (config, seed) pairs reproduce
// identical runs. Callers running many experiments should reuse a
// Workspace instead, which retains the simulation components across
// builds.
func Build(ts TrafficScenario, cm CommModel, seed uint64, factory ControllerFactory) (*Simulation, error) {
	return NewWorkspace().Build(ts, cm, seed, factory)
}

func kinOf(v *vehicle.Vehicle) platoon.KinState {
	return platoon.KinState{
		Pos:    v.State.Pos,
		Speed:  v.State.Speed,
		Accel:  v.State.Accel,
		Length: v.Spec.Length,
		Valid:  true,
	}
}

// AddRecorder attaches a trace recorder; call before Start.
func (s *Simulation) AddRecorder(r trace.Recorder) { s.recs = append(s.recs, r) }

// AttachContext makes RunUntil honor ctx: once ctx is canceled the kernel
// aborts within `every` events (0 selects des.DefaultInterruptEvery) and
// RunUntil returns an error wrapping ctx.Err(). A context that can never
// be canceled (context.Background, context.TODO) removes the check, so
// the hot loop pays nothing for the plumbing.
func (s *Simulation) AttachContext(ctx context.Context, every uint64) {
	if ctx == nil || ctx.Done() == nil {
		s.Kernel.SetInterruptCheck(0, nil)
		return
	}
	s.Kernel.SetInterruptCheck(every, func() error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("scenario: simulation canceled at %v: %w", s.Kernel.Now(), err)
		}
		return nil
	})
}

// Scenario returns the Step-1 traffic configuration.
func (s *Simulation) Scenario() TrafficScenario { return s.scenario }

// Comm returns the Step-1 communication configuration.
func (s *Simulation) Comm() CommModel { return s.comm }

// TotalSimTime returns the configured horizon.
func (s *Simulation) TotalSimTime() des.Time { return s.scenario.TotalSimTime }

// VehicleIDs returns the member IDs in platoon order.
func (s *Simulation) VehicleIDs() []string {
	ids := make([]string, len(s.Members))
	for i, m := range s.Members {
		ids[i] = m.ID()
	}
	return ids
}

// Start arms traffic stepping and beaconing. It may be called once.
func (s *Simulation) Start() error {
	if s.started {
		return errors.New("scenario: simulation already started")
	}
	s.started = true
	if err := s.Traffic.Start(); err != nil {
		return err
	}
	for _, m := range s.Members {
		m.Start()
	}
	return nil
}

// RunUntil advances the simulation to the given time. A latched runtime
// invariant violation (TrafficScenario.Invariants) surfaces as its
// invariant.ErrInvariant-wrapping error rather than the kernel's
// ErrStopped.
func (s *Simulation) RunUntil(t des.Time) error {
	err := s.Kernel.RunUntil(t)
	if errors.Is(err, des.ErrStopped) {
		if fault := s.Traffic.Fault(); fault != nil {
			return fault
		}
	}
	return err
}
