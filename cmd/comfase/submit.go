package main

// The multi-campaign control plane: `comfase serve -dir` turns the
// coordinator into a campaign service, and `comfase submit` /
// `comfase campaigns` are its operator CLI. The wire types live in
// internal/fabric; this file only does flags, HTTP and printing.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"text/tabwriter"
	"time"

	"comfase/internal/config"
	"comfase/internal/fabric"
	"comfase/internal/obs"
)

// serveSubmitFlags carries the serve flags relevant to submit mode.
type serveSubmitFlags struct {
	dir               string
	addr              string
	leaseSize         int
	leaseTTL          time.Duration
	fairnessCap       int
	resume            bool
	verbose           bool
	heartbeatPath     string
	heartbeatInterval time.Duration
	metricsAddr       string
}

// runServeSubmitMode runs `comfase serve` as a multi-campaign service:
// campaigns arrive over /v1/campaigns, every campaign's artifacts live
// in the service directory, and SIGINT drains — leaving queued and
// half-done campaigns resumable with -resume.
func runServeSubmitMode(ctx context.Context, stdout io.Writer, explicit map[string]bool, parsed *config.Parsed, f serveSubmitFlags) error {
	listenAddr := parsed.Fabric.Addr
	if explicit["addr"] {
		listenAddr = f.addr
	}
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	size := parsed.Fabric.LeaseSize
	if explicit["lease-size"] {
		size = f.leaseSize
	}
	ttl := parsed.Fabric.LeaseTTL
	if explicit["lease-ttl"] {
		ttl = f.leaseTTL
	}
	cap := parsed.Fabric.FairnessCap
	if explicit["fairness-cap"] {
		cap = f.fairnessCap
	}

	reg := obs.NewRegistry()
	if f.metricsAddr != "" {
		srv, err := obs.NewServer(f.metricsAddr, reg)
		if err != nil {
			return fmt.Errorf("serve: metrics listener: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "metrics: http://%s/metrics (pprof at /debug/pprof/)\n", srv.Addr())
	}
	if f.heartbeatPath != "" {
		hb := obs.NewHeartbeat(f.heartbeatPath, f.heartbeatInterval, reg.Snapshot)
		if err := hb.Start(); err != nil {
			return fmt.Errorf("serve: heartbeat: %w", err)
		}
		defer func() {
			if herr := hb.Stop(); herr != nil {
				fmt.Fprintln(os.Stderr, "comfase: heartbeat:", herr)
			}
		}()
	}
	var logf func(string, ...any)
	if f.verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(stdout, "serve: "+format+"\n", a...) }
	}

	svc, err := fabric.NewService(fabric.ServiceOptions{
		Dir:         f.dir,
		Resume:      f.resume,
		LeaseSize:   size,
		LeaseTTL:    ttl,
		FairnessCap: cap,
		Metrics:     reg,
		Logf:        logf,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return fmt.Errorf("serve: listen: %w", err)
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	fmt.Fprintf(stdout, "fabric campaign service on http://%s: %d campaign(s) in %s, lease TTL %v\n",
		ln.Addr(), len(svc.ListCampaigns()), f.dir, ttlOrDefault(ttl))
	fmt.Fprintf(stdout, "submit campaigns with: comfase submit -coordinator http://%s -config FILE\n", ln.Addr())
	fmt.Fprintf(stdout, "start workers with: comfase work -coordinator http://%s\n", ln.Addr())

	err = svc.Wait(ctx)
	// Keep the socket up until live workers have been told the service is
	// draining (bounded by one TTL), so a clean drain does not look like a
	// dead coordinator on their side.
	svc.Linger()
	switch {
	case errors.Is(err, fabric.ErrDrained):
		remaining := 0
		for _, st := range svc.ListCampaigns() {
			if st.State == fabric.StateQueued || st.State == fabric.StateRunning {
				remaining++
			}
		}
		fmt.Fprintf(stdout, "service drained: %d campaign(s) incomplete; configs and merged prefixes are in %s — continue with -resume\n",
			remaining, f.dir)
		return errInterrupted
	case err != nil:
		return err
	}
	fmt.Fprintf(stdout, "service drained: all %d campaign(s) complete in %s\n", len(svc.ListCampaigns()), f.dir)
	return nil
}

// runSubmit posts a campaign config to a running campaign service.
func runSubmit(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	coordURL := fs.String("coordinator", "", "campaign service base URL, e.g. http://host:7440 (required)")
	cfgPath := fs.String("config", "", "JSON campaign configuration to submit (required)")
	name := fs.String("name", "", "optional human-readable campaign name shown by `comfase campaigns`")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordURL == "" {
		return fmt.Errorf("submit: -coordinator is required")
	}
	if *cfgPath == "" {
		return fmt.Errorf("submit: -config is required")
	}
	cfgJSON, err := os.ReadFile(*cfgPath)
	if err != nil {
		return err
	}
	var resp fabric.SubmitResponse
	if err := postControl(ctx, *coordURL+fabric.PathCampaigns,
		fabric.SubmitRequest{Name: *name, Config: cfgJSON}, &resp); err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Fprintf(stdout, "campaign %s submitted: %d grid points, queue position %d\n",
		resp.CampaignID, resp.Total, resp.Position)
	return nil
}

// runCampaigns lists, inspects, cancels, or fetches results from a
// running campaign service.
func runCampaigns(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("campaigns", flag.ContinueOnError)
	coordURL := fs.String("coordinator", "", "campaign service base URL (required)")
	id := fs.String("id", "", "print one campaign's status document instead of the list")
	cancelID := fs.String("cancel", "", "cancel the campaign with this ID")
	resultsID := fs.String("results", "", "fetch a campaign's merged results CSV")
	outPath := fs.String("o", "", "with -results, write the CSV here instead of stdout")
	quarantineOut := fs.String("quarantine-out", "", "with -results, also write the campaign's quarantine records here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordURL == "" {
		return fmt.Errorf("campaigns: -coordinator is required")
	}
	modes := 0
	for _, m := range []string{*id, *cancelID, *resultsID} {
		if m != "" {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("campaigns: -id, -cancel and -results are mutually exclusive")
	}

	switch {
	case *cancelID != "":
		var resp fabric.CancelResponse
		if err := postControl(ctx, *coordURL+fabric.PathCampaignCancel,
			fabric.CancelRequest{CampaignID: *cancelID}, &resp); err != nil {
			return fmt.Errorf("campaigns: %w", err)
		}
		if !resp.OK {
			fmt.Fprintf(stdout, "campaign %s already %s; nothing to cancel\n", *cancelID, resp.State)
			return nil
		}
		fmt.Fprintf(stdout, "campaign %s cancelled; merged rows so far stay on disk\n", *cancelID)
		return nil

	case *id != "":
		var st fabric.CampaignStatus
		if err := getControl(ctx, *coordURL+fabric.PathCampaignStatus+"?id="+*id, &st); err != nil {
			return fmt.Errorf("campaigns: %w", err)
		}
		doc, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", doc)
		return nil

	case *resultsID != "":
		var res fabric.CampaignResultsResponse
		if err := getControl(ctx, *coordURL+fabric.PathCampaignResults+"?id="+*resultsID, &res); err != nil {
			return fmt.Errorf("campaigns: %w", err)
		}
		out := stdout
		if *outPath != "" {
			fl, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			defer fl.Close()
			out = fl
		}
		if _, err := io.WriteString(out, res.CSV); err != nil {
			return err
		}
		if *quarantineOut != "" {
			if err := os.WriteFile(*quarantineOut, []byte(res.Quarantine), 0o644); err != nil {
				return err
			}
		}
		if *outPath != "" {
			fmt.Fprintf(stdout, "campaign %s: %d/%d grid points (%s) written to %s\n",
				res.CampaignID, res.Merged, res.Total, res.State, *outPath)
		}
		return nil

	default:
		var list fabric.CampaignListResponse
		if err := getControl(ctx, *coordURL+fabric.PathCampaigns, &list); err != nil {
			return fmt.Errorf("campaigns: %w", err)
		}
		tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "ID\tNAME\tSTATE\tMERGED\tTOTAL\tCHUNKS")
		for _, st := range list.Campaigns {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d/%d\n",
				st.ID, st.Name, st.State, st.Merged, st.Total, st.ChunksDone, st.Chunks)
		}
		return tw.Flush()
	}
}

// controlClient is the operator-CLI HTTP client; control-plane calls are
// small and a stuck service should fail fast.
var controlClient = &http.Client{Timeout: 30 * time.Second}

// postControl POSTs a JSON message and decodes the 200 response; any
// other status surfaces the service's error body.
func postControl(ctx context.Context, url string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	return doControl(httpReq, resp)
}

// getControl GETs a control-plane document.
func getControl(ctx context.Context, url string, resp any) error {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return doControl(httpReq, resp)
}

func doControl(req *http.Request, resp any) error {
	httpResp, err := controlClient.Do(req)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return err
	}
	if httpResp.StatusCode != http.StatusOK {
		return fmt.Errorf("service answered %s: %s", httpResp.Status, bytes.TrimSpace(data))
	}
	if err := json.Unmarshal(data, resp); err != nil {
		return fmt.Errorf("malformed response: %w", err)
	}
	return nil
}
