package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"comfase/internal/classify"
	"comfase/internal/core"
	"comfase/internal/runner"
)

// syncBuffer is a Writer safe to poll from the test goroutine while a
// subcommand goroutine writes to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var coordinatorURLRe = regexp.MustCompile(`-coordinator (http://[0-9.]+:[0-9]+)`)

// waitForCoordinatorURL polls the serve goroutine's output until the
// startup banner reveals the bound address.
func waitForCoordinatorURL(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := coordinatorURLRe.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("coordinator never announced its address: %q", out.String())
	return ""
}

// TestRunServeWorkDistributedCLI drives the fabric through the CLI: a
// serve coordinator on a dynamic port, two work processes in-process,
// and the merged CSV compared byte-for-byte against a sequential
// campaign run. It then re-serves with -resume on the completed file,
// which must finish immediately without any workers.
func TestRunServeWorkDistributedCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments in -short mode")
	}
	dir := t.TempDir()
	cfg := writeGridConfig(t, dir)

	ref := filepath.Join(dir, "ref.csv")
	if err := run(bg(), []string{"campaign", "-config", cfg, "-results", ref}, os.Stdout); err != nil {
		t.Fatalf("sequential campaign: %v", err)
	}

	merged := filepath.Join(dir, "merged.csv")
	quarantine := filepath.Join(dir, "quarantine.jsonl")
	serveOut := &syncBuffer{}
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- run(bg(), []string{"serve", "-config", cfg,
			"-results", merged, "-quarantine", quarantine,
			"-addr", "127.0.0.1:0", "-lease-size", "1", "-lease-ttl", "5s"}, serveOut)
	}()
	url := waitForCoordinatorURL(t, serveOut)

	var wg sync.WaitGroup
	workErrs := make([]error, 2)
	for i := range workErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workErrs[i] = run(bg(), []string{"work", "-coordinator", url, "-workers", "2"}, &syncBuffer{})
		}(i)
	}
	wg.Wait()
	for i, err := range workErrs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve: %v\noutput: %q", err, serveOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("serve did not finish after workers exited: %q", serveOut.String())
	}
	if !strings.Contains(serveOut.String(), "campaign complete") {
		t.Errorf("serve output missing completion banner: %q", serveOut.String())
	}

	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Errorf("fabric-merged CSV differs from sequential run:\nseq:\n%s\nfabric:\n%s", want, got)
	}
	if q, err := os.ReadFile(quarantine); err != nil || len(q) != 0 {
		t.Errorf("quarantine = %q, %v; want empty file", q, err)
	}

	// Resume on a complete file: the grid is already merged, so serve
	// exits successfully without a single worker connecting.
	var resumeOut syncBuffer
	if err := run(bg(), []string{"serve", "-config", cfg,
		"-results", merged, "-quarantine", quarantine,
		"-addr", "127.0.0.1:0", "-resume"}, &resumeOut); err != nil {
		t.Fatalf("resume on complete file: %v", err)
	}
	got2, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != string(want) {
		t.Errorf("resume on complete file rewrote results:\nbefore:\n%s\nafter:\n%s", want, got2)
	}
}

// TestRunServeDrainOnCancel covers the SIGINT path: a canceled context
// drains the coordinator, which exits with the interrupted code and a
// -resume hint.
func TestRunServeDrainOnCancel(t *testing.T) {
	dir := t.TempDir()
	cfg := writeGridConfig(t, dir)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out syncBuffer
	err := run(ctx, []string{"serve", "-config", cfg,
		"-results", filepath.Join(dir, "m.csv"), "-addr", "127.0.0.1:0"}, &out)
	if exitCode(err) != exitInterrupted {
		t.Fatalf("drained serve exit = %d (%v), want %d", exitCode(err), err, exitInterrupted)
	}
	if !strings.Contains(out.String(), "-resume") {
		t.Errorf("drain message missing resume hint: %q", out.String())
	}
}

func TestRunServeWorkErrors(t *testing.T) {
	dir := t.TempDir()
	cfg := writeGridConfig(t, dir)
	results := filepath.Join(dir, "m.csv")
	if err := run(bg(), []string{"serve", "-results", results}, os.Stdout); err == nil {
		t.Error("serve without -config accepted")
	}
	if err := run(bg(), []string{"serve", "-config", cfg}, os.Stdout); err == nil {
		t.Error("serve without -results accepted")
	}
	if err := run(bg(), []string{"serve", "-config", "/nonexistent.json", "-results", results}, os.Stdout); err == nil {
		t.Error("serve with missing config accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"campaign": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bg(), []string{"serve", "-config", empty, "-results", results}, os.Stdout); err == nil {
		t.Error("serve with empty grid accepted")
	}

	// A results file with a hole is not a coordinator output: resume must
	// refuse rather than silently discard the out-of-prefix rows.
	gap := filepath.Join(dir, "gap.csv")
	var buf bytes.Buffer
	sink := runner.NewCSVSink(&buf)
	for _, nr := range []int{0, 2} {
		res := core.ExperimentResult{
			Spec:    core.ExperimentSpec{Nr: nr, Attack: "delay"},
			Outcome: classify.NonEffective,
		}
		if err := sink.Put(res); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(gap, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(bg(), []string{"serve", "-config", cfg, "-results", gap,
		"-addr", "127.0.0.1:0", "-resume"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "contiguous") {
		t.Errorf("resume on gapped results = %v, want contiguity error", err)
	}

	if err := run(bg(), []string{"work"}, os.Stdout); err == nil {
		t.Error("work without -coordinator accepted")
	}
	if err := run(bg(), []string{"work", "-config", "/nonexistent.json"}, os.Stdout); err == nil {
		t.Error("work with missing config accepted")
	}
}

// TestRunMergeQuarantineCLI merges per-worker quarantine files through
// the CLI and checks grid ordering, plus the flag-validation paths.
func TestRunMergeQuarantineCLI(t *testing.T) {
	dir := t.TempDir()
	recs := []core.ExperimentFailure{
		{Nr: 5, Attack: "delay", Class: "panic", Error: "boom"},
		{Nr: 1, Attack: "delay", Class: "timeout", Error: "slow"},
		{Nr: 3, Attack: "delay", Class: "invariant", Error: "NaN"},
	}
	write := func(name string, failures ...core.ExperimentFailure) string {
		t.Helper()
		var buf bytes.Buffer
		sink := runner.NewQuarantineSink(&buf)
		for _, f := range failures {
			if err := sink.Put(f); err != nil {
				t.Fatal(err)
			}
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := write("a.jsonl", recs[0])
	b := write("b.jsonl", recs[1], recs[2])

	out := filepath.Join(dir, "merged.jsonl")
	var sb strings.Builder
	if err := run(bg(), []string{"merge",
		"-quarantine", a, "-quarantine", b, "-quarantine-out", out}, &sb); err != nil {
		t.Fatalf("merge -quarantine: %v", err)
	}
	if !strings.Contains(sb.String(), "merged 2 quarantine files") {
		t.Errorf("merge output = %q", sb.String())
	}
	got, err := runner.ReadQuarantineFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("merged quarantine has %d records, want 3", len(got))
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		for nr, f := range got {
			if strings.Contains(line, `"`+f.Class+`"`) {
				order = append(order, nr)
			}
		}
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Errorf("merged quarantine out of grid order: %v", order)
		}
	}

	if err := run(bg(), []string{"merge", "-quarantine", a}, os.Stdout); err == nil {
		t.Error("merge -quarantine without -quarantine-out accepted")
	}
}
