// Command comfase runs ComFASE golden runs and attack-injection
// campaigns from JSON configuration files.
//
// Usage:
//
//	comfase golden [-seed N] [-csv golden.csv]
//	comfase campaign -config experiment.json [-out report.txt] [-v]
//
// The config format is documented in internal/config; an empty scenario/
// comm section reproduces the paper's setup (§IV-A). Example:
//
//	{
//	  "campaign": {
//	    "attack": "delay",
//	    "valuesS":     {"range": {"from": 0.2, "to": 3.0, "step": 0.2}},
//	    "startTimesS": {"range": {"from": 17, "to": 21.8, "step": 0.2}},
//	    "durationsS":  {"range": {"from": 1, "to": 30, "step": 1}}
//	  }
//	}
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"comfase/internal/analysis"
	"comfase/internal/config"
	"comfase/internal/core"
	"comfase/internal/scenario"
	"comfase/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "comfase:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return usageError()
	}
	switch args[0] {
	case "golden":
		return runGolden(args[1:], stdout)
	case "campaign":
		return runCampaign(args[1:], stdout)
	case "-h", "--help", "help":
		printUsage(stdout)
		return nil
	default:
		return usageError()
	}
}

func usageError() error {
	return fmt.Errorf("usage: comfase <golden|campaign> [flags]; see comfase help")
}

func printUsage(w io.Writer) {
	fmt.Fprint(w, `comfase - communication fault and attack simulation engine

Subcommands:
  golden    run the attack-free reference simulation of the paper scenario
            flags: -seed N, -csv FILE (write the Fig. 4 time series)
  campaign  run an attack-injection campaign from a JSON config
            flags: -config FILE (required), -out FILE, -v (progress)
`)
}

func runGolden(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("golden", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "random seed")
	csvPath := fs.String("csv", "", "write the golden-run time series as CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng, err := core.NewEngine(core.EngineConfig{
		Scenario: scenario.PaperScenario(),
		Comm:     scenario.PaperCommModel(),
		Seed:     *seed,
	})
	if err != nil {
		return err
	}
	log, res, err := eng.GoldenRun()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "golden run: max deceleration %.3f m/s^2, %d beacon deliveries, %d samples\n",
		res.MaxDecel, res.Deliveries, log.Len())
	if *csvPath != "" {
		if err := writeCSV(log, *csvPath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "time series written to %s\n", *csvPath)
	}
	return nil
}

func writeCSV(log *trace.FullLog, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := log.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runCampaign(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	cfgPath := fs.String("config", "", "JSON experiment configuration (required)")
	outPath := fs.String("out", "", "write the report to this file instead of stdout")
	verbose := fs.Bool("v", false, "print campaign progress")
	workers := fs.Int("workers", 1, "parallel experiment workers (0 = all cores)")
	csvPath := fs.String("csv", "", "write per-experiment results as CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cfgPath == "" {
		return fmt.Errorf("campaign: -config is required")
	}
	f, err := os.Open(*cfgPath)
	if err != nil {
		return err
	}
	parsed, err := config.Parse(f)
	f.Close()
	if err != nil {
		return err
	}

	eng, err := core.NewEngine(parsed.Engine)
	if err != nil {
		return err
	}
	var progress core.Progress
	if *verbose {
		progress = func(done, total int) {
			if done%500 == 0 || done == total {
				fmt.Fprintf(stdout, "  %d/%d experiments\n", done, total)
			}
		}
	}
	var res *core.CampaignResult
	if *workers == 1 {
		res, err = eng.RunCampaign(parsed.Campaign, progress)
	} else {
		res, err = eng.RunCampaignParallel(parsed.Campaign, *workers, progress)
	}
	if err != nil {
		return err
	}

	if *csvPath != "" {
		cf, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := analysis.ExperimentsCSV(cf, res.Experiments); err != nil {
			cf.Close()
			return err
		}
		if err := cf.Close(); err != nil {
			return err
		}
	}

	out := stdout
	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		out = of
	}
	return writeCampaignReport(out, res)
}

func writeCampaignReport(w io.Writer, res *core.CampaignResult) error {
	if _, err := fmt.Fprintf(w, "%s\n\n", analysis.SummaryLine(res)); err != nil {
		return err
	}
	for _, series := range []analysis.Series{
		analysis.ByDuration(res.Experiments),
		analysis.ByValue(res.Experiments),
		analysis.ByStart(res.Experiments),
	} {
		if err := analysis.WriteSeriesTable(w, series); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "collider attribution:"); err != nil {
		return err
	}
	return analysis.WriteColliderTable(w, analysis.ColliderShares(res.Experiments))
}
