// Command comfase runs ComFASE golden runs and attack-injection
// campaigns from JSON configuration files.
//
// Usage:
//
//	comfase golden [-seed N] [-csv golden.csv]
//	comfase campaign -config experiment.json [-out report.txt] [-v]
//	         [-workers N] [-shard i/n] [-results FILE] [-resume] [-jsonl FILE]
//	comfase merge -out merged.csv shard1.csv shard2.csv ...
//
// Campaigns stream per-experiment results to -results as they complete,
// honor SIGINT by flushing partial results and exiting cleanly, resume
// an interrupted run with -resume, and split the grid across processes
// with -shard (merge the per-shard files with `comfase merge`).
//
// The config format is documented in internal/config; an empty scenario/
// comm section reproduces the paper's setup (§IV-A). Example:
//
//	{
//	  "campaign": {
//	    "attack": "delay",
//	    "valuesS":     {"range": {"from": 0.2, "to": 3.0, "step": 0.2}},
//	    "startTimesS": {"range": {"from": 17, "to": 21.8, "step": 0.2}},
//	    "durationsS":  {"range": {"from": 1, "to": 30, "step": 1}}
//	  },
//	  "runtime": {"workers": 8, "resultsFile": "delay.csv"}
//	}
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"comfase/internal/analysis"
	"comfase/internal/config"
	"comfase/internal/core"
	"comfase/internal/fabric"
	"comfase/internal/obs"
	"comfase/internal/registry"
	"comfase/internal/runner"
	"comfase/internal/scenario"
	"comfase/internal/sim/des"
	"comfase/internal/trace"
)

// errInterrupted marks a campaign cut short by SIGINT/SIGTERM: partial
// results were flushed and the operator was told how to resume, but the
// grid is incomplete, so the exit code must say so.
var errInterrupted = errors.New("interrupted")

// Exit codes. Scripts driving long campaigns branch on these.
const (
	exitOK          = 0   // campaign (or other subcommand) completed
	exitError       = 1   // config, I/O or execution error
	exitInterrupted = 2   // SIGINT/SIGTERM; partial results flushed
	exitBudget      = 3   // persistent failures exceeded -max-failures
	exitForced      = 130 // second SIGINT: immediate forced exit
)

// forceExit is swapped out by tests of the double-SIGINT path.
var forceExit = os.Exit

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go watchSignals(sigs, cancel)
	os.Exit(exitCode(run(ctx, os.Args[1:], os.Stdout)))
}

// watchSignals implements the two-stage shutdown: the first signal
// cancels the context (graceful — the runner flushes partial results and
// run returns errInterrupted); a second signal means the operator wants
// out NOW and force-exits without waiting for the flush.
func watchSignals(sigs <-chan os.Signal, cancel context.CancelFunc) {
	<-sigs
	cancel()
	<-sigs
	forceExit(exitForced)
}

// exitCode maps run's error to the process exit code and prints the
// error for the plain-failure case.
func exitCode(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, errInterrupted):
		// The campaign already printed the resume instructions.
		return exitInterrupted
	case errors.Is(err, runner.ErrFailureBudget):
		fmt.Fprintln(os.Stderr, "comfase:", err)
		return exitBudget
	default:
		fmt.Fprintln(os.Stderr, "comfase:", err)
		return exitError
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return usageError()
	}
	switch args[0] {
	case "golden":
		return runGolden(args[1:], stdout)
	case "campaign":
		return runCampaign(ctx, args[1:], stdout)
	case "serve":
		return runServe(ctx, args[1:], stdout)
	case "work":
		return runWork(ctx, args[1:], stdout)
	case "submit":
		return runSubmit(ctx, args[1:], stdout)
	case "campaigns":
		return runCampaigns(ctx, args[1:], stdout)
	case "merge":
		return runMerge(args[1:], stdout)
	case "list":
		return runList(stdout)
	case "-h", "--help", "help":
		printUsage(stdout)
		return nil
	default:
		return usageError()
	}
}

func usageError() error {
	return fmt.Errorf("usage: comfase <golden|campaign|serve|work|submit|campaigns|merge|list> [flags]; see comfase help")
}

func printUsage(w io.Writer) {
	fmt.Fprint(w, `comfase - communication fault and attack simulation engine

Subcommands:
  golden    run the attack-free reference simulation of the paper scenario
            flags: -seed N, -csv FILE (write the Fig. 4 time series),
                   -cpuprofile FILE, -memprofile FILE (pprof output)
  campaign  run an attack-injection campaign from a JSON config
            flags: -config FILE (required), -out FILE, -v (progress),
                   -workers N (0 = all cores), -shard i/n (grid slice),
                   -results FILE (stream per-experiment CSV rows; resume source),
                   -resume (skip experiments already in -results and -quarantine),
                   -jsonl FILE (stream JSON-lines results),
                   -retries N (re-run failed experiments before quarantining),
                   -max-failures N (failure budget; 0 = fail fast, -1 = unlimited),
                   -experiment-timeout D (per-experiment watchdog, e.g. 30s),
                   -event-budget N (per-experiment kernel event cap),
                   -invariants (runtime NaN/position/overlap checks),
                   -checkpoints=false (disable prefix-checkpoint forking),
                   -checkpoint-trie=false (disable duration chaining within a group),
                   -early-exit (stop experiments once their verdict is decided),
                   -early-exit-tolerance T, -early-exit-hold D (stability window),
                   -quarantine FILE (append persistent failures as JSON lines),
                   -heartbeat FILE (publish periodic JSON metrics snapshots),
                   -heartbeat-interval D (snapshot period, default 5s),
                   -metrics-addr HOST:PORT (live /metrics, /debug/vars, /debug/pprof),
                   -cpuprofile FILE, -memprofile FILE (pprof output)
            the first SIGINT flushes partial results to -results and exits
            cleanly; a second SIGINT force-exits immediately.
            exit codes: 0 complete, 1 error, 2 interrupted,
                        3 failure budget exceeded, 130 forced exit
  serve     coordinate a distributed campaign: own the grid, lease
            contiguous expNr ranges to "comfase work" processes over
            HTTP, re-lease ranges whose worker dies, and stream the
            merged results CSV in grid order — byte-identical to a
            sequential run even when workers crash mid-range
            flags: -config FILE (required), -results FILE (required),
                   -addr HOST:PORT (listen address; "127.0.0.1:0" picks
                   a port), -quarantine FILE (merged failure records),
                   -lease-size N (grid points per lease),
                   -lease-ttl D (dead-worker detection window),
                   -resume (trust the merged prefix already on disk),
                   -max-failures N (campaign failure budget),
                   -heartbeat FILE, -heartbeat-interval D,
                   -metrics-addr HOST:PORT, -v (log fabric events)
            the first SIGINT drains (finish what's leased, lease nothing
            new) and exits 2 with a -resume hint; a second force-exits.
            with -dir DIR the coordinator becomes a multi-campaign
            service: campaigns arrive via "comfase submit", run oldest-
            first under a per-campaign -fairness-cap, and every
            campaign's config/results/quarantine/status files live side
            by side in DIR; -resume re-adopts everything in DIR, and
            -config becomes optional (fabric defaults only)
  submit    enqueue a campaign config on a "comfase serve -dir" service
            flags: -coordinator URL (required), -config FILE (required),
                   -name NAME (label shown by "comfase campaigns")
  campaigns inspect a campaign service: list all campaigns, or one of
            -id ID (status JSON), -cancel ID, -results ID [-o FILE]
            [-quarantine-out FILE]; plus -coordinator URL (required)
  work      execute leased ranges for a "comfase serve" coordinator; the
            campaign config arrives from the coordinator at registration
            flags: -coordinator URL (required unless -config supplies
                   fabric.addr), -config FILE (optional local defaults),
                   -workers N (local experiment pool; 0 = all cores),
                   -max-coordinator-retries N (consecutive failed calls
                   tolerated before giving up),
                   -retry-base D (backoff base; capped exponential with
                   jitter), -v (log lease progress)
  merge     merge per-shard result CSVs into one file ordered by expNr,
            and/or per-worker quarantine.jsonl files likewise
            flags: -out FILE (required with CSV inputs), then the shard
                   CSV paths; -quarantine FILE (repeatable quarantine
                   inputs) with -quarantine-out FILE
  list      print the registered scenario, attack and campaign families
            with their parameter schemas — the names a config file's
            campaign/matrix sections accept

A config file may replace the single "campaign" section with a "matrix"
section crossing registered scenarios with registered attacks; the grid
is flattened into one contiguous expNr space, so -shard, -resume and
merge work unchanged, and the results CSV gains a scenario column.
`)
}

func runGolden(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("golden", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "random seed")
	csvPath := fs.String("csv", "", "write the golden-run time series as CSV")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "comfase: profile:", perr)
		}
	}()
	eng, err := core.NewEngine(core.EngineConfig{
		Scenario: scenario.PaperScenario(),
		Comm:     scenario.PaperCommModel(),
		Seed:     *seed,
	})
	if err != nil {
		return err
	}
	log, res, err := eng.GoldenRun()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "golden run: max deceleration %.3f m/s^2, %d beacon deliveries, %d samples\n",
		res.MaxDecel, res.Deliveries, log.Len())
	if *csvPath != "" {
		if err := writeCSV(log, *csvPath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "time series written to %s\n", *csvPath)
	}
	return nil
}

// startProfiles starts CPU profiling to cpuPath and arranges a heap
// profile written to memPath when the returned stop function runs.
// Either path may be empty; stop is always safe to call once.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // capture retained heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}

func writeCSV(log *trace.FullLog, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := log.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runCampaign(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	cfgPath := fs.String("config", "", "JSON experiment configuration (required)")
	outPath := fs.String("out", "", "write the report to this file instead of stdout")
	verbose := fs.Bool("v", false, "print campaign progress")
	workers := fs.Int("workers", 1, "parallel experiment workers (0 = all cores)")
	resultsPath := fs.String("results", "", "stream per-experiment results to this CSV (resume source)")
	csvPath := fs.String("csv", "", "alias of -results (kept for compatibility)")
	jsonlPath := fs.String("jsonl", "", "stream per-experiment results to this JSON-lines file")
	shardSpec := fs.String("shard", "", `grid slice "i/n" this process executes (merge files with: comfase merge)`)
	resume := fs.Bool("resume", false, "skip experiments already recorded in the results file")
	retries := fs.Int("retries", 0, "re-run a failed experiment up to N times before quarantining it")
	maxFailures := fs.Int("max-failures", 0, "persistent failures tolerated before aborting (0 = fail fast, negative = unlimited)")
	experimentTimeout := fs.Duration("experiment-timeout", 0, "per-experiment wall-clock watchdog (0 = none)")
	eventBudget := fs.Uint64("event-budget", 0, "per-experiment kernel event cap (0 = unlimited)")
	invariants := fs.Bool("invariants", false, "enable runtime invariant checks in every simulation step")
	checkpoints := fs.Bool("checkpoints", true, "fork same-start experiments from a prefix checkpoint (results are bit-identical either way)")
	checkpointTrie := fs.Bool("checkpoint-trie", true, "chain same-value experiments through mid-attack boundary snapshots (results are bit-identical either way)")
	earlyExit := fs.Bool("early-exit", false, "stop an experiment once its classification is decided (classification-identical; truncates raw kinematics)")
	earlyExitTolerance := fs.Float64("early-exit-tolerance", 0, "early-exit re-stabilisation speed tolerance in m/s (0 = 0.001 default)")
	earlyExitHold := fs.Duration("early-exit-hold", 0, "how long the platoon must hold within tolerance before exiting early (0 = 5s default)")
	quarantinePath := fs.String("quarantine", "", "append persistent-failure records to this JSON-lines file")
	heartbeatPath := fs.String("heartbeat", "", "periodically publish a JSON metrics snapshot to this file (atomic rename)")
	heartbeatInterval := fs.Duration("heartbeat-interval", 0, "heartbeat snapshot period (0 = 5s default)")
	metricsAddr := fs.String("metrics-addr", "", `serve live metrics over HTTP: /metrics, /debug/vars, /debug/pprof ("127.0.0.1:0" picks a port)`)
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *retries < 0 {
		return fmt.Errorf("campaign: negative -retries %d", *retries)
	}
	if *experimentTimeout < 0 {
		return fmt.Errorf("campaign: negative -experiment-timeout %v", *experimentTimeout)
	}
	if *cfgPath == "" {
		return fmt.Errorf("campaign: -config is required")
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "comfase: profile:", perr)
		}
	}()
	f, err := os.Open(*cfgPath)
	if err != nil {
		return err
	}
	parsed, err := config.Parse(f)
	f.Close()
	if err != nil {
		return err
	}

	// Flags override config-file runtime settings.
	opts := runner.Options{
		Workers:            parsed.Runtime.Workers,
		Shard:              parsed.Runtime.Shard,
		Retries:            parsed.Runtime.Retries,
		RetryBackoff:       parsed.Runtime.RetryBackoff,
		ExperimentTimeout:  parsed.Runtime.ExperimentTimeout,
		MaxFailures:        parsed.Runtime.MaxFailures,
		DisableCheckpoints: parsed.Runtime.DisableCheckpoints,
		DisableTrie:        parsed.Runtime.DisableTrie,
	}
	explicit := map[string]bool{}
	fs.Visit(func(fl *flag.Flag) { explicit[fl.Name] = true })
	if explicit["workers"] || opts.Workers == 0 {
		opts.Workers = *workers
	}
	if opts.Workers == 0 {
		opts.Workers = -1 // all cores (pool maps <= 0 to GOMAXPROCS)
	}
	if *shardSpec != "" {
		if opts.Shard, err = runner.ParseShard(*shardSpec); err != nil {
			return err
		}
	}
	if explicit["retries"] {
		opts.Retries = *retries
	}
	if explicit["max-failures"] {
		opts.MaxFailures = *maxFailures
	}
	if explicit["experiment-timeout"] {
		opts.ExperimentTimeout = *experimentTimeout
	}
	if explicit["checkpoints"] {
		opts.DisableCheckpoints = !*checkpoints
	}
	if explicit["checkpoint-trie"] {
		opts.DisableTrie = !*checkpointTrie
	}
	if explicit["invariants"] {
		parsed.Engine.Invariants = *invariants
	}
	if explicit["event-budget"] {
		parsed.Engine.EventBudget = *eventBudget
	}
	if explicit["early-exit"] {
		parsed.Engine.EarlyExit = *earlyExit
	}
	if explicit["early-exit-tolerance"] {
		parsed.Engine.EarlyExitTolerance = *earlyExitTolerance
	}
	if explicit["early-exit-hold"] {
		parsed.Engine.EarlyExitHold = des.FromSeconds(earlyExitHold.Seconds())
	}
	quarantine := parsed.Runtime.QuarantineFile
	if explicit["quarantine"] {
		quarantine = *quarantinePath
	}
	heartbeat := parsed.Runtime.HeartbeatFile
	if explicit["heartbeat"] {
		heartbeat = *heartbeatPath
	}
	hbInterval := parsed.Runtime.HeartbeatInterval
	if explicit["heartbeat-interval"] {
		hbInterval = *heartbeatInterval
	}
	if hbInterval < 0 {
		return fmt.Errorf("campaign: negative -heartbeat-interval %v", hbInterval)
	}
	addr := parsed.Runtime.MetricsAddr
	if explicit["metrics-addr"] {
		addr = *metricsAddr
	}
	results := parsed.Runtime.ResultsFile
	switch {
	case *resultsPath != "" && *csvPath != "" && *resultsPath != *csvPath:
		return fmt.Errorf("campaign: -results and -csv disagree (%q vs %q)", *resultsPath, *csvPath)
	case *resultsPath != "":
		results = *resultsPath
	case *csvPath != "":
		results = *csvPath
	}
	if *resume && results == "" {
		return fmt.Errorf("campaign: -resume needs a results file (-results)")
	}

	var sinks []runner.Sink
	if *resume {
		if opts.Resume, err = runner.ReadResultsFile(results); err != nil {
			return err
		}
		if quarantine != "" {
			// Quarantined grid points are not retried on resume; delete
			// the quarantine file to re-execute them.
			if opts.ResumeFailures, err = runner.ReadQuarantineFile(quarantine); err != nil {
				return err
			}
		}
	}
	matrixMode := len(parsed.Cells) > 0
	if results != "" {
		sink, closeSink, err := openResultsSink(results, len(opts.Resume) > 0, matrixMode)
		if err != nil {
			return err
		}
		defer closeSink()
		sinks = append(sinks, sink)
	}
	if quarantine != "" {
		// Resume runs append below the prior records; fresh runs truncate,
		// like the results sink.
		mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if *resume {
			mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		}
		qf, err := os.OpenFile(quarantine, mode, 0o644)
		if err != nil {
			return err
		}
		defer qf.Close()
		opts.Quarantine = runner.NewQuarantineSink(qf)
	}
	if *jsonlPath != "" {
		jf, err := os.Create(*jsonlPath)
		if err != nil {
			return err
		}
		defer jf.Close()
		sinks = append(sinks, runner.NewJSONSink(jf))
	}

	// Track completion for the interrupt message; chain the verbose
	// printer behind it.
	var lastDone, lastTotal atomic.Int64
	opts.Progress = func(done, total int) {
		lastDone.Store(int64(done))
		lastTotal.Store(int64(total))
		if *verbose && (done%500 == 0 || done == total) {
			fmt.Fprintf(stdout, "  %d/%d experiments\n", done, total)
		}
	}

	// Metrics are always collected — the instrumentation is free enough
	// that there is nothing to turn off — and the heartbeat file and HTTP
	// endpoint are opt-in views onto the same registry.
	reg := obs.NewRegistry()
	parsed.Engine.Metrics = reg
	opts.Metrics = reg
	if addr != "" {
		srv, err := obs.NewServer(addr, reg)
		if err != nil {
			return fmt.Errorf("campaign: metrics listener: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "metrics: http://%s/metrics (pprof at /debug/pprof/)\n", srv.Addr())
	}
	var hb *obs.Heartbeat
	if heartbeat != "" {
		hb = obs.NewHeartbeat(heartbeat, hbInterval, reg.Snapshot)
		if err := hb.Start(); err != nil {
			return fmt.Errorf("campaign: heartbeat: %w", err)
		}
	}

	var res *core.CampaignResult
	var mres *runner.MatrixResult
	if matrixMode {
		// Per-cell engines inherit the same flag overrides and metrics
		// registry the single-campaign engine would get.
		for i := range parsed.Cells {
			if explicit["invariants"] {
				parsed.Cells[i].Engine.Invariants = *invariants
			}
			if explicit["event-budget"] {
				parsed.Cells[i].Engine.EventBudget = *eventBudget
			}
			if explicit["early-exit"] {
				parsed.Cells[i].Engine.EarlyExit = *earlyExit
			}
			if explicit["early-exit-tolerance"] {
				parsed.Cells[i].Engine.EarlyExitTolerance = *earlyExitTolerance
			}
			if explicit["early-exit-hold"] {
				parsed.Cells[i].Engine.EarlyExitHold = des.FromSeconds(earlyExitHold.Seconds())
			}
			parsed.Cells[i].Engine.Metrics = reg
		}
		mres, err = runner.RunMatrix(ctx, parsed.Cells, opts, sinks...)
	} else {
		eng, eerr := core.NewEngine(parsed.Engine)
		if eerr != nil {
			return eerr
		}
		r, rerr := runner.New(eng, opts, sinks...)
		if rerr != nil {
			return rerr
		}
		res, err = r.Run(ctx, parsed.Campaign)
	}
	if hb != nil {
		// Stop after the run so the final snapshot carries the campaign's
		// end state; a write failure is diagnostic, never fatal to results.
		if herr := hb.Stop(); herr != nil {
			fmt.Fprintln(os.Stderr, "comfase: heartbeat:", herr)
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) && ctx.Err() != nil {
			// SIGINT/SIGTERM: partial results are already flushed; tell
			// the operator how to pick the campaign back up.
			fmt.Fprintf(stdout, "campaign interrupted: %d/%d experiments completed\n",
				lastDone.Load(), lastTotal.Load())
			if results != "" {
				fmt.Fprintf(stdout, "partial results flushed to %s; continue with -resume\n", results)
			}
			return errInterrupted
		}
		return err
	}
	var failCounts core.FailureCounts
	var nDone, gridTotal int
	if matrixMode {
		failCounts = mres.FailureCounts
		nDone = len(mres.Experiments)
		for _, c := range parsed.Cells {
			gridTotal += c.Setup.NumExperiments()
		}
	} else {
		failCounts = res.FailureCounts
		nDone = len(res.Experiments)
		gridTotal = parsed.Campaign.NumExperiments()
	}
	if n := failCounts.Total(); n > 0 {
		fmt.Fprintf(stdout, "%d experiment(s) quarantined (%v)", n, failCounts)
		if quarantine != "" {
			fmt.Fprintf(stdout, "; records in %s", quarantine)
		}
		fmt.Fprintln(stdout)
	}

	out := stdout
	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		out = of
	}
	if opts.Shard.Enabled() {
		fmt.Fprintf(out, "shard %s: %d of the grid's %d experiments (merge shard files with: comfase merge)\n\n",
			opts.Shard, nDone, gridTotal)
	}
	if matrixMode {
		return writeMatrixReport(out, mres)
	}
	return writeCampaignReport(out, res)
}

// writeMatrixReport renders the whole-matrix summary, the per-cell
// classification table, and each cell's figure family.
func writeMatrixReport(w io.Writer, res *runner.MatrixResult) error {
	if _, err := fmt.Fprintf(w, "matrix campaign: %d cells, %d experiments: %v\n\n",
		len(res.Cells), res.Counts.Total(), res.Counts); err != nil {
		return err
	}
	groups := analysis.GroupCells(res.Experiments)
	if err := analysis.WriteCellTable(w, groups); err != nil {
		return err
	}
	for _, f := range analysis.CellFamilies(groups) {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := analysis.WriteCellReport(w, f); err != nil {
			return err
		}
	}
	return nil
}

// openResultsSink opens the streaming CSV results file. A resume run
// with prior rows appends; anything else starts fresh with a header.
// Matrix runs use the 11-column schema with the scenario column.
func openResultsSink(path string, appendTo, matrix bool) (runner.Sink, func() error, error) {
	if appendTo {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		if matrix {
			return runner.NewMatrixCSVAppendSink(f), f.Close, nil
		}
		return runner.NewCSVAppendSink(f), f.Close, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	if matrix {
		return runner.NewMatrixCSVSink(f), f.Close, nil
	}
	return runner.NewCSVSink(f), f.Close, nil
}

// runServe is the fabric coordinator: it owns the campaign grid, leases
// contiguous ranges to `comfase work` processes, re-leases ranges whose
// worker goes silent past the TTL, and streams the merged results CSV
// (and quarantine) in grid order — byte-identical to a sequential run.
func runServe(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	cfgPath := fs.String("config", "", "JSON experiment configuration (required); served to workers at registration")
	addr := fs.String("addr", "", `HTTP listen address (default config fabric.addr, else "127.0.0.1:0")`)
	resultsPath := fs.String("results", "", "merged results CSV (required; also the -resume source)")
	quarantinePath := fs.String("quarantine", "", "merged quarantine JSON-lines file")
	leaseSize := fs.Int("lease-size", 0, "grid points per worker lease (0 = config fabric.leaseSize, else 16)")
	leaseTTL := fs.Duration("lease-ttl", 0, "worker lease TTL; silence past it re-leases the range (0 = config fabric.leaseTTLS, else 15s)")
	dirFlag := fs.String("dir", "", "campaign service directory: enables submit mode, where campaigns arrive via `comfase submit` and every campaign's files live here")
	fairnessCap := fs.Int("fairness-cap", 0, "max chunks one campaign may hold leased while others wait (0 = config fabric.fairnessCap, else 4; submit mode only)")
	resume := fs.Bool("resume", false, "trust the merged prefix already in -results/-quarantine (or every campaign in -dir) and serve only the rest")
	maxFailures := fs.Int("max-failures", 0, "persistent failures tolerated before aborting (0 = fail fast, negative = unlimited)")
	verbose := fs.Bool("v", false, "log fabric events (registrations, leases, expiries)")
	heartbeatPath := fs.String("heartbeat", "", "periodically publish a JSON metrics snapshot to this file (atomic rename)")
	heartbeatInterval := fs.Duration("heartbeat-interval", 0, "heartbeat snapshot period (0 = 5s default)")
	metricsAddr := fs.String("metrics-addr", "", `serve live metrics over HTTP: /metrics, /debug/vars, /debug/pprof ("127.0.0.1:0" picks a port)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cfgPath == "" && *dirFlag == "" {
		return fmt.Errorf("serve: -config is required")
	}
	// In submit mode the config file is optional and only supplies fabric
	// defaults; campaigns bring their own configs over the API.
	var cfgJSON []byte
	var parsed *config.Parsed
	if *cfgPath != "" {
		var err error
		cfgJSON, err = os.ReadFile(*cfgPath)
		if err != nil {
			return err
		}
		parsed, err = config.Parse(bytes.NewReader(cfgJSON))
		if err != nil {
			return err
		}
	} else {
		parsed = &config.Parsed{}
	}
	explicit := map[string]bool{}
	fs.Visit(func(fl *flag.Flag) { explicit[fl.Name] = true })

	dir := parsed.Fabric.Dir
	if explicit["dir"] {
		dir = *dirFlag
	}
	if dir != "" {
		return runServeSubmitMode(ctx, stdout, explicit, parsed, serveSubmitFlags{
			dir: dir, addr: *addr, leaseSize: *leaseSize, leaseTTL: *leaseTTL,
			fairnessCap: *fairnessCap, resume: *resume, verbose: *verbose,
			heartbeatPath: *heartbeatPath, heartbeatInterval: *heartbeatInterval,
			metricsAddr: *metricsAddr,
		})
	}
	if *cfgPath == "" {
		return fmt.Errorf("serve: -config is required")
	}
	if *resultsPath == "" {
		return fmt.Errorf("serve: -results is required")
	}

	matrixMode := len(parsed.Cells) > 0
	base, total := 0, 0
	if matrixMode {
		base = parsed.Cells[0].Setup.Base
		for _, cell := range parsed.Cells {
			total += cell.Setup.NumExperiments()
		}
	} else {
		base = parsed.Campaign.Base
		total = parsed.Campaign.NumExperiments()
	}
	if total == 0 {
		return fmt.Errorf("serve: the config describes an empty campaign grid")
	}

	listenAddr := parsed.Fabric.Addr
	if explicit["addr"] {
		listenAddr = *addr
	}
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	size := parsed.Fabric.LeaseSize
	if explicit["lease-size"] {
		size = *leaseSize
	}
	ttl := parsed.Fabric.LeaseTTL
	if explicit["lease-ttl"] {
		ttl = *leaseTTL
	}
	budget := parsed.Runtime.MaxFailures
	if explicit["max-failures"] {
		budget = *maxFailures
	}

	// Resume: the coordinator's release frontier writes a contiguous grid
	// prefix, so "done so far" is exactly the rows + quarantine records
	// below the first missing expNr. ReadMergedPrefix also chops any
	// partial trailing line a mid-write crash left, and its rejection
	// names the offending file — with several campaigns' outputs on one
	// disk, "which file was refused" must never be ambiguous.
	prefix := 0
	if *resume {
		p, err := runner.ReadMergedPrefix(*resultsPath, *quarantinePath, base, total)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		prefix = p
	}

	appendMode := false
	if *resume {
		if st, err := os.Stat(*resultsPath); err == nil && st.Size() > 0 {
			appendMode = true
		}
	}
	openOut := func(path string) (*os.File, error) {
		mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if appendMode {
			mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		}
		return os.OpenFile(path, mode, 0o644)
	}
	resultsFile, err := openOut(*resultsPath)
	if err != nil {
		return err
	}
	defer resultsFile.Close()
	var quarantineOut io.Writer
	if *quarantinePath != "" {
		qf, err := openOut(*quarantinePath)
		if err != nil {
			return err
		}
		defer qf.Close()
		quarantineOut = qf
	}

	reg := obs.NewRegistry()
	if *metricsAddr != "" {
		srv, err := obs.NewServer(*metricsAddr, reg)
		if err != nil {
			return fmt.Errorf("serve: metrics listener: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "metrics: http://%s/metrics (pprof at /debug/pprof/)\n", srv.Addr())
	}
	var hb *obs.Heartbeat
	if *heartbeatPath != "" {
		hb = obs.NewHeartbeat(*heartbeatPath, *heartbeatInterval, reg.Snapshot)
		if err := hb.Start(); err != nil {
			return fmt.Errorf("serve: heartbeat: %w", err)
		}
		defer func() {
			if herr := hb.Stop(); herr != nil {
				fmt.Fprintln(os.Stderr, "comfase: heartbeat:", herr)
			}
		}()
	}
	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(stdout, "serve: "+format+"\n", a...) }
	}

	coord, err := fabric.NewCoordinator(fabric.CoordinatorOptions{
		ConfigJSON:   cfgJSON,
		Base:         base,
		Total:        total,
		Matrix:       matrixMode,
		LeaseSize:    size,
		LeaseTTL:     ttl,
		Results:      resultsFile,
		NoHeader:     appendMode,
		Quarantine:   quarantineOut,
		ResumePrefix: prefix,
		MaxFailures:  budget,
		Metrics:      reg,
		Logf:         logf,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return fmt.Errorf("serve: listen: %w", err)
	}
	httpSrv := &http.Server{Handler: coord.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	fmt.Fprintf(stdout, "fabric coordinator on http://%s: %d grid points (%d resumed), lease TTL %v\n",
		ln.Addr(), total, prefix, ttlOrDefault(ttl))
	fmt.Fprintf(stdout, "start workers with: comfase work -coordinator http://%s\n", ln.Addr())

	err = coord.Wait(ctx)
	// Keep the socket up until live workers have been told the run is
	// over (bounded by one TTL); killing it mid-poll would make a clean
	// finish look like a dead coordinator on their side.
	coord.Linger()
	switch {
	case errors.Is(err, fabric.ErrDrained):
		fmt.Fprintf(stdout, "campaign drained: %d/%d grid points merged to %s; continue with -resume\n",
			coord.Merged(), total, *resultsPath)
		return errInterrupted
	case err != nil:
		return err
	}
	fmt.Fprintf(stdout, "campaign complete: %d grid points merged to %s (%d quarantined)\n",
		coord.Merged(), *resultsPath, coord.Failures())
	return nil
}

// ttlOrDefault mirrors the coordinator's TTL defaulting for log output.
func ttlOrDefault(ttl time.Duration) time.Duration {
	if ttl <= 0 {
		return fabric.DefaultLeaseTTL
	}
	return ttl
}

// runWork is a fabric worker: it registers with a coordinator, receives
// the campaign config, and executes leased ranges until the grid is done
// or the coordinator drains.
func runWork(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("work", flag.ContinueOnError)
	coordURL := fs.String("coordinator", "", "coordinator base URL, e.g. http://host:7440 (required unless -config supplies fabric.addr)")
	cfgPath := fs.String("config", "", "optional local config supplying fabric worker defaults")
	workers := fs.Int("workers", 0, "local parallel experiment workers (0 = the coordinator config's setting, else all cores)")
	maxRetries := fs.Int("max-coordinator-retries", 0, "consecutive failed coordinator calls tolerated per request (0 = config fabric.maxCoordinatorRetries, else 8)")
	retryBase := fs.Duration("retry-base", 0, "base of the capped jittered exponential backoff between retries (0 = config fabric.retryBaseMS, else 200ms)")
	verbose := fs.Bool("v", false, "log lease progress")
	if err := fs.Parse(args); err != nil {
		return err
	}
	url := *coordURL
	retries := *maxRetries
	base := *retryBase
	if *cfgPath != "" {
		f, err := os.Open(*cfgPath)
		if err != nil {
			return err
		}
		parsed, err := config.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		if url == "" && parsed.Fabric.Addr != "" {
			url = "http://" + parsed.Fabric.Addr
		}
		if retries == 0 {
			retries = parsed.Fabric.MaxCoordinatorRetries
		}
		if base == 0 {
			base = parsed.Fabric.RetryBase
		}
	}
	if url == "" {
		return fmt.Errorf("work: -coordinator is required (or a -config with fabric.addr)")
	}
	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(stdout, "work: "+format+"\n", a...) }
	}
	w, err := fabric.NewWorker(fabric.WorkerOptions{
		Coordinator: url,
		Workers:     *workers,
		MaxRetries:  retries,
		RetryBase:   base,
		Metrics:     obs.NewRegistry(),
		Logf:        logf,
	})
	if err != nil {
		return err
	}
	err = w.Run(ctx)
	if errors.Is(err, context.Canceled) && ctx.Err() != nil {
		fmt.Fprintln(stdout, "worker interrupted; unfinished leases will expire and be re-leased")
		return errInterrupted
	}
	return err
}

// stringList is a repeatable flag collecting its values in order.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func runMerge(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	outPath := fs.String("out", "", "merged CSV output path (required with CSV inputs)")
	var quarantineIn stringList
	fs.Var(&quarantineIn, "quarantine", "per-worker quarantine.jsonl input (repeatable)")
	quarantineOut := fs.String("quarantine-out", "", "merged quarantine output path (required with -quarantine)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 && len(quarantineIn) == 0 {
		return fmt.Errorf("merge: nothing to merge (pass shard CSVs and/or -quarantine inputs)")
	}
	if fs.NArg() > 0 {
		if *outPath == "" {
			return fmt.Errorf("merge: -out is required with CSV inputs")
		}
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if err := runner.MergeResultFiles(f, fs.Args()...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "merged %d result files into %s\n", fs.NArg(), *outPath)
	}
	if len(quarantineIn) > 0 {
		if *quarantineOut == "" {
			return fmt.Errorf("merge: -quarantine-out is required with -quarantine inputs")
		}
		f, err := os.Create(*quarantineOut)
		if err != nil {
			return err
		}
		if err := runner.MergeQuarantineFiles(f, quarantineIn...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "merged %d quarantine files into %s\n", len(quarantineIn), *quarantineOut)
	}
	return nil
}

// runList prints the registered scenario, attack and campaign families
// with their parameter schemas — the authoritative answer to "what can
// a config file's campaign/matrix sections name?".
func runList(stdout io.Writer) error {
	fmt.Fprintln(stdout, "scenarios:")
	for _, name := range registry.ScenarioNames() {
		entry, err := registry.LookupScenario(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  %-16s %s\n", entry.Name, entry.Desc)
		for _, spec := range entry.Schema {
			fmt.Fprintf(stdout, "    %s\n", spec.Doc())
		}
	}
	fmt.Fprintln(stdout, "\nattacks:")
	for _, name := range registry.AttackNames() {
		entry, err := registry.LookupAttack(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  %-16s %s\n", entry.Name, entry.Desc)
		if entry.ValueDoc != "" {
			fmt.Fprintf(stdout, "    value: %s\n", entry.ValueDoc)
		}
		for _, spec := range entry.Schema {
			fmt.Fprintf(stdout, "    %s\n", spec.Doc())
		}
	}
	fmt.Fprintln(stdout, "\ncampaigns:")
	for _, name := range registry.CampaignNames() {
		entry, err := registry.LookupCampaign(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  %-16s %s\n", entry.Name, entry.Desc)
	}
	return nil
}

func writeCampaignReport(w io.Writer, res *core.CampaignResult) error {
	if _, err := fmt.Fprintf(w, "%s\n\n", analysis.SummaryLine(res)); err != nil {
		return err
	}
	for _, series := range []analysis.Series{
		analysis.ByDuration(res.Experiments),
		analysis.ByValue(res.Experiments),
		analysis.ByStart(res.Experiments),
	} {
		if err := analysis.WriteSeriesTable(w, series); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "collider attribution:"); err != nil {
		return err
	}
	return analysis.WriteColliderTable(w, analysis.ColliderShares(res.Experiments))
}
