package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUsage(t *testing.T) {
	if err := run(nil, os.Stdout); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"frobnicate"}, os.Stdout); err == nil {
		t.Error("unknown subcommand accepted")
	}
	var sb strings.Builder
	if err := run([]string{"help"}, &sb); err != nil {
		t.Errorf("help: %v", err)
	}
	if !strings.Contains(sb.String(), "golden") || !strings.Contains(sb.String(), "campaign") {
		t.Errorf("usage output incomplete: %q", sb.String())
	}
}

func TestRunGoldenWithCSV(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "golden.csv")
	var sb strings.Builder
	if err := run([]string{"golden", "-csv", csvPath}, &sb); err != nil {
		t.Fatalf("golden: %v", err)
	}
	if !strings.Contains(sb.String(), "max deceleration") {
		t.Errorf("golden output = %q", sb.String())
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("read csv: %v", err)
	}
	if !strings.HasPrefix(string(data), "time_s,vehicle,pos_m,speed_mps,accel_mps2") {
		t.Errorf("csv header missing: %.80s", data)
	}
	if lines := strings.Count(string(data), "\n"); lines < 20000 {
		t.Errorf("csv has %d lines, want ~24001 (6000 samples x 4 vehicles)", lines)
	}
}

func TestRunCampaignFromConfig(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "exp.json")
	cfg := `{
	  "campaign": {
	    "attack": "delay",
	    "valuesS": {"values": [2.0]},
	    "startTimesS": {"values": [18]},
	    "durationsS": {"values": [10]}
	  }
	}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatalf("write config: %v", err)
	}
	outPath := filepath.Join(dir, "report.txt")
	var sb strings.Builder
	if err := run([]string{"campaign", "-config", cfgPath, "-out", outPath}, &sb); err != nil {
		t.Fatalf("campaign: %v", err)
	}
	report, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	for _, want := range []string{"1 experiments", "severe=1", "collider"} {
		if !strings.Contains(string(report), want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRunCampaignErrors(t *testing.T) {
	if err := run([]string{"campaign"}, os.Stdout); err == nil {
		t.Error("missing -config accepted")
	}
	if err := run([]string{"campaign", "-config", "/nonexistent.json"}, os.Stdout); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"campaign": {}}`), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := run([]string{"campaign", "-config", bad}, os.Stdout); err == nil {
		t.Error("empty campaign accepted")
	}
}
