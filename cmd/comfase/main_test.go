package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"comfase/internal/runner"
)

func bg() context.Context { return context.Background() }

func TestRunUsage(t *testing.T) {
	if err := run(bg(), nil, os.Stdout); err == nil {
		t.Error("no args accepted")
	}
	if err := run(bg(), []string{"frobnicate"}, os.Stdout); err == nil {
		t.Error("unknown subcommand accepted")
	}
	var sb strings.Builder
	if err := run(bg(), []string{"help"}, &sb); err != nil {
		t.Errorf("help: %v", err)
	}
	for _, want := range []string{"golden", "campaign", "serve", "work", "merge",
		"-shard", "-resume", "-coordinator", "-lease-ttl", "-quarantine-out"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("usage output missing %q: %q", want, sb.String())
		}
	}
}

func TestRunGoldenWithCSV(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "golden.csv")
	var sb strings.Builder
	if err := run(bg(), []string{"golden", "-csv", csvPath}, &sb); err != nil {
		t.Fatalf("golden: %v", err)
	}
	if !strings.Contains(sb.String(), "max deceleration") {
		t.Errorf("golden output = %q", sb.String())
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("read csv: %v", err)
	}
	if !strings.HasPrefix(string(data), "time_s,vehicle,pos_m,speed_mps,accel_mps2") {
		t.Errorf("csv header missing: %.80s", data)
	}
	if lines := strings.Count(string(data), "\n"); lines < 20000 {
		t.Errorf("csv has %d lines, want ~24001 (6000 samples x 4 vehicles)", lines)
	}
}

// writeGridConfig writes a small 4-experiment campaign config.
func writeGridConfig(t *testing.T, dir string) string {
	t.Helper()
	cfgPath := filepath.Join(dir, "exp.json")
	cfg := `{
	  "campaign": {
	    "attack": "delay",
	    "valuesS": {"values": [0.4, 2.0]},
	    "startTimesS": {"values": [18]},
	    "durationsS": {"values": [2, 10]}
	  }
	}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatalf("write config: %v", err)
	}
	return cfgPath
}

func TestRunCampaignFromConfig(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "exp.json")
	cfg := `{
	  "campaign": {
	    "attack": "delay",
	    "valuesS": {"values": [2.0]},
	    "startTimesS": {"values": [18]},
	    "durationsS": {"values": [10]}
	  }
	}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatalf("write config: %v", err)
	}
	outPath := filepath.Join(dir, "report.txt")
	var sb strings.Builder
	if err := run(bg(), []string{"campaign", "-config", cfgPath, "-out", outPath}, &sb); err != nil {
		t.Fatalf("campaign: %v", err)
	}
	report, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	for _, want := range []string{"1 experiments", "severe=1", "collider"} {
		if !strings.Contains(string(report), want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRunCampaignErrors(t *testing.T) {
	if err := run(bg(), []string{"campaign"}, os.Stdout); err == nil {
		t.Error("missing -config accepted")
	}
	if err := run(bg(), []string{"campaign", "-config", "/nonexistent.json"}, os.Stdout); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"campaign": {}}`), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := run(bg(), []string{"campaign", "-config", bad}, os.Stdout); err == nil {
		t.Error("empty campaign accepted")
	}
	cfg := writeGridConfig(t, dir)
	if err := run(bg(), []string{"campaign", "-config", cfg, "-resume"}, os.Stdout); err == nil {
		t.Error("-resume without -results accepted")
	}
	if err := run(bg(), []string{"campaign", "-config", cfg, "-shard", "9/2"}, os.Stdout); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := run(bg(), []string{"campaign", "-config", cfg,
		"-results", "a.csv", "-csv", "b.csv"}, os.Stdout); err == nil {
		t.Error("conflicting -results/-csv accepted")
	}
}

// TestRunCampaignShardedMergeMatchesSequential drives the full
// multi-process workflow through the CLI: two shard runs into separate
// result files, merged, compared byte-for-byte against one sequential
// run of the whole grid.
func TestRunCampaignShardedMergeMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments in -short mode")
	}
	dir := t.TempDir()
	cfg := writeGridConfig(t, dir)

	seqCSV := filepath.Join(dir, "seq.csv")
	if err := run(bg(), []string{"campaign", "-config", cfg, "-results", seqCSV}, os.Stdout); err != nil {
		t.Fatalf("sequential campaign: %v", err)
	}
	var shardFiles []string
	for _, shard := range []string{"1/2", "2/2"} {
		path := filepath.Join(dir, "shard"+shard[:1]+".csv")
		shardFiles = append(shardFiles, path)
		var sb strings.Builder
		if err := run(bg(), []string{"campaign", "-config", cfg,
			"-shard", shard, "-workers", "2", "-results", path}, &sb); err != nil {
			t.Fatalf("shard %s: %v", shard, err)
		}
		if !strings.Contains(sb.String(), "shard "+shard) {
			t.Errorf("shard %s report missing shard note: %q", shard, sb.String())
		}
	}
	merged := filepath.Join(dir, "merged.csv")
	if err := run(bg(), append([]string{"merge", "-out", merged}, shardFiles...), os.Stdout); err != nil {
		t.Fatalf("merge: %v", err)
	}
	want, err := os.ReadFile(seqCSV)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Errorf("merged shards differ from sequential run:\nseq:\n%s\nmerged:\n%s", want, got)
	}
}

// TestRunCampaignInterruptAndResume cancels the context mid-campaign
// (the SIGINT path), checks the partial results survive and the exit is
// clean, then resumes to completion and compares against an
// uninterrupted run.
func TestRunCampaignInterruptAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments in -short mode")
	}
	dir := t.TempDir()
	cfg := writeGridConfig(t, dir)

	ref := filepath.Join(dir, "ref.csv")
	if err := run(bg(), []string{"campaign", "-config", cfg, "-results", ref}, os.Stdout); err != nil {
		t.Fatalf("reference campaign: %v", err)
	}

	// Cancel the context up front: the runner aborts before completing
	// the grid, flushes whatever finished, and run() reports the
	// interruption (exit code 2) rather than a hard error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial := filepath.Join(dir, "run.csv")
	var sb strings.Builder
	err := run(ctx, []string{"campaign", "-config", cfg, "-results", partial}, &sb)
	if !errors.Is(err, errInterrupted) {
		t.Fatalf("interrupted campaign returned %v, want errInterrupted", err)
	}
	if exitCode(err) != exitInterrupted {
		t.Fatalf("exitCode(%v) = %d, want %d", err, exitCode(err), exitInterrupted)
	}
	if !strings.Contains(sb.String(), "interrupted") || !strings.Contains(sb.String(), "-resume") {
		t.Errorf("interrupt message missing: %q", sb.String())
	}

	var sb2 strings.Builder
	if err := run(bg(), []string{"campaign", "-config", cfg,
		"-results", partial, "-resume"}, &sb2); err != nil {
		t.Fatalf("resumed campaign: %v", err)
	}
	if !strings.Contains(sb2.String(), "4 experiments") {
		t.Errorf("resumed report incomplete: %q", sb2.String())
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(partial)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Errorf("resumed results differ from uninterrupted run:\nref:\n%s\ngot:\n%s", want, got)
	}
}

func TestExitCodes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, exitOK},
		{errors.New("boom"), exitError},
		{fmt.Errorf("campaign: %w", errInterrupted), exitInterrupted},
		{fmt.Errorf("campaign: %w: too many", runner.ErrFailureBudget), exitBudget},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("exitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestWatchSignalsForceExit drives the two-stage shutdown: the first
// signal cancels gracefully, the second force-exits with code 130.
func TestWatchSignalsForceExit(t *testing.T) {
	exited := make(chan int, 1)
	orig := forceExit
	forceExit = func(code int) { exited <- code }
	defer func() { forceExit = orig }()

	sigs := make(chan os.Signal, 2)
	cancelled := make(chan struct{})
	go watchSignals(sigs, func() { close(cancelled) })

	sigs <- os.Interrupt
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("first signal did not cancel")
	}
	select {
	case code := <-exited:
		t.Fatalf("first signal force-exited with %d", code)
	default:
	}

	sigs <- os.Interrupt
	select {
	case code := <-exited:
		if code != exitForced {
			t.Errorf("forced exit code = %d, want %d", code, exitForced)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second signal did not force-exit")
	}
}

// TestRunCampaignFailureBudgetCLI drives the containment flags end to
// end: a tiny -event-budget makes every experiment fail, the default
// failure budget aborts with the dedicated exit code, -max-failures -1
// streams past the failures into the quarantine file, and -resume skips
// the quarantined points.
func TestRunCampaignFailureBudgetCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments in -short mode")
	}
	dir := t.TempDir()
	cfg := writeGridConfig(t, dir)
	quarantine := filepath.Join(dir, "quarantine.jsonl")
	results := filepath.Join(dir, "run.csv")

	// Default -max-failures 0: the first persistent failure aborts.
	err := run(bg(), []string{"campaign", "-config", cfg,
		"-event-budget", "100", "-quarantine", quarantine}, &strings.Builder{})
	if !errors.Is(err, runner.ErrFailureBudget) {
		t.Fatalf("fail-fast run returned %v, want ErrFailureBudget", err)
	}
	if exitCode(err) != exitBudget {
		t.Fatalf("exitCode = %d, want %d", exitCode(err), exitBudget)
	}

	// Unlimited budget: the campaign completes and quarantines all 4.
	var sb strings.Builder
	if err := run(bg(), []string{"campaign", "-config", cfg,
		"-event-budget", "100", "-max-failures", "-1",
		"-results", results, "-quarantine", quarantine}, &sb); err != nil {
		t.Fatalf("unlimited-budget run: %v", err)
	}
	if !strings.Contains(sb.String(), "4 experiment(s) quarantined") ||
		!strings.Contains(sb.String(), "event-budget=4") {
		t.Errorf("missing quarantine summary: %q", sb.String())
	}
	recs, err := runner.ReadQuarantineFile(quarantine)
	if err != nil {
		t.Fatalf("ReadQuarantineFile: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("quarantine has %d records, want 4", len(recs))
	}
	for nr, f := range recs {
		if f.Class != "event-budget" {
			t.Errorf("expNr %d class = %q, want event-budget", nr, f.Class)
		}
	}

	// Resume: quarantined points are skipped, nothing is re-run and the
	// quarantine file is not re-appended.
	var sb2 strings.Builder
	if err := run(bg(), []string{"campaign", "-config", cfg,
		"-event-budget", "100", "-max-failures", "0",
		"-results", results, "-quarantine", quarantine, "-resume"}, &sb2); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	recs2, err := runner.ReadQuarantineFile(quarantine)
	if err != nil {
		t.Fatalf("ReadQuarantineFile after resume: %v", err)
	}
	if len(recs2) != 4 {
		t.Errorf("quarantine grew to %d records on resume, want 4", len(recs2))
	}
}

func TestRunMergeErrors(t *testing.T) {
	if err := run(bg(), []string{"merge"}, os.Stdout); err == nil {
		t.Error("merge without -out accepted")
	}
	dir := t.TempDir()
	if err := run(bg(), []string{"merge", "-out", filepath.Join(dir, "m.csv")}, os.Stdout); err == nil {
		t.Error("merge without inputs accepted")
	}
}
