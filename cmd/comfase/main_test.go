package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func bg() context.Context { return context.Background() }

func TestRunUsage(t *testing.T) {
	if err := run(bg(), nil, os.Stdout); err == nil {
		t.Error("no args accepted")
	}
	if err := run(bg(), []string{"frobnicate"}, os.Stdout); err == nil {
		t.Error("unknown subcommand accepted")
	}
	var sb strings.Builder
	if err := run(bg(), []string{"help"}, &sb); err != nil {
		t.Errorf("help: %v", err)
	}
	for _, want := range []string{"golden", "campaign", "merge", "-shard", "-resume"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("usage output missing %q: %q", want, sb.String())
		}
	}
}

func TestRunGoldenWithCSV(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "golden.csv")
	var sb strings.Builder
	if err := run(bg(), []string{"golden", "-csv", csvPath}, &sb); err != nil {
		t.Fatalf("golden: %v", err)
	}
	if !strings.Contains(sb.String(), "max deceleration") {
		t.Errorf("golden output = %q", sb.String())
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("read csv: %v", err)
	}
	if !strings.HasPrefix(string(data), "time_s,vehicle,pos_m,speed_mps,accel_mps2") {
		t.Errorf("csv header missing: %.80s", data)
	}
	if lines := strings.Count(string(data), "\n"); lines < 20000 {
		t.Errorf("csv has %d lines, want ~24001 (6000 samples x 4 vehicles)", lines)
	}
}

// writeGridConfig writes a small 4-experiment campaign config.
func writeGridConfig(t *testing.T, dir string) string {
	t.Helper()
	cfgPath := filepath.Join(dir, "exp.json")
	cfg := `{
	  "campaign": {
	    "attack": "delay",
	    "valuesS": {"values": [0.4, 2.0]},
	    "startTimesS": {"values": [18]},
	    "durationsS": {"values": [2, 10]}
	  }
	}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatalf("write config: %v", err)
	}
	return cfgPath
}

func TestRunCampaignFromConfig(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "exp.json")
	cfg := `{
	  "campaign": {
	    "attack": "delay",
	    "valuesS": {"values": [2.0]},
	    "startTimesS": {"values": [18]},
	    "durationsS": {"values": [10]}
	  }
	}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatalf("write config: %v", err)
	}
	outPath := filepath.Join(dir, "report.txt")
	var sb strings.Builder
	if err := run(bg(), []string{"campaign", "-config", cfgPath, "-out", outPath}, &sb); err != nil {
		t.Fatalf("campaign: %v", err)
	}
	report, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	for _, want := range []string{"1 experiments", "severe=1", "collider"} {
		if !strings.Contains(string(report), want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRunCampaignErrors(t *testing.T) {
	if err := run(bg(), []string{"campaign"}, os.Stdout); err == nil {
		t.Error("missing -config accepted")
	}
	if err := run(bg(), []string{"campaign", "-config", "/nonexistent.json"}, os.Stdout); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"campaign": {}}`), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := run(bg(), []string{"campaign", "-config", bad}, os.Stdout); err == nil {
		t.Error("empty campaign accepted")
	}
	cfg := writeGridConfig(t, dir)
	if err := run(bg(), []string{"campaign", "-config", cfg, "-resume"}, os.Stdout); err == nil {
		t.Error("-resume without -results accepted")
	}
	if err := run(bg(), []string{"campaign", "-config", cfg, "-shard", "9/2"}, os.Stdout); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := run(bg(), []string{"campaign", "-config", cfg,
		"-results", "a.csv", "-csv", "b.csv"}, os.Stdout); err == nil {
		t.Error("conflicting -results/-csv accepted")
	}
}

// TestRunCampaignShardedMergeMatchesSequential drives the full
// multi-process workflow through the CLI: two shard runs into separate
// result files, merged, compared byte-for-byte against one sequential
// run of the whole grid.
func TestRunCampaignShardedMergeMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments in -short mode")
	}
	dir := t.TempDir()
	cfg := writeGridConfig(t, dir)

	seqCSV := filepath.Join(dir, "seq.csv")
	if err := run(bg(), []string{"campaign", "-config", cfg, "-results", seqCSV}, os.Stdout); err != nil {
		t.Fatalf("sequential campaign: %v", err)
	}
	var shardFiles []string
	for _, shard := range []string{"1/2", "2/2"} {
		path := filepath.Join(dir, "shard"+shard[:1]+".csv")
		shardFiles = append(shardFiles, path)
		var sb strings.Builder
		if err := run(bg(), []string{"campaign", "-config", cfg,
			"-shard", shard, "-workers", "2", "-results", path}, &sb); err != nil {
			t.Fatalf("shard %s: %v", shard, err)
		}
		if !strings.Contains(sb.String(), "shard "+shard) {
			t.Errorf("shard %s report missing shard note: %q", shard, sb.String())
		}
	}
	merged := filepath.Join(dir, "merged.csv")
	if err := run(bg(), append([]string{"merge", "-out", merged}, shardFiles...), os.Stdout); err != nil {
		t.Fatalf("merge: %v", err)
	}
	want, err := os.ReadFile(seqCSV)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Errorf("merged shards differ from sequential run:\nseq:\n%s\nmerged:\n%s", want, got)
	}
}

// TestRunCampaignInterruptAndResume cancels the context mid-campaign
// (the SIGINT path), checks the partial results survive and the exit is
// clean, then resumes to completion and compares against an
// uninterrupted run.
func TestRunCampaignInterruptAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments in -short mode")
	}
	dir := t.TempDir()
	cfg := writeGridConfig(t, dir)

	ref := filepath.Join(dir, "ref.csv")
	if err := run(bg(), []string{"campaign", "-config", cfg, "-results", ref}, os.Stdout); err != nil {
		t.Fatalf("reference campaign: %v", err)
	}

	// Cancel the context up front: the runner aborts before completing
	// the grid, flushes whatever finished, and run() exits cleanly.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial := filepath.Join(dir, "run.csv")
	var sb strings.Builder
	if err := run(ctx, []string{"campaign", "-config", cfg, "-results", partial}, &sb); err != nil {
		t.Fatalf("interrupted campaign returned error: %v", err)
	}
	if !strings.Contains(sb.String(), "interrupted") || !strings.Contains(sb.String(), "-resume") {
		t.Errorf("interrupt message missing: %q", sb.String())
	}

	var sb2 strings.Builder
	if err := run(bg(), []string{"campaign", "-config", cfg,
		"-results", partial, "-resume"}, &sb2); err != nil {
		t.Fatalf("resumed campaign: %v", err)
	}
	if !strings.Contains(sb2.String(), "4 experiments") {
		t.Errorf("resumed report incomplete: %q", sb2.String())
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(partial)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Errorf("resumed results differ from uninterrupted run:\nref:\n%s\ngot:\n%s", want, got)
	}
}

func TestRunMergeErrors(t *testing.T) {
	if err := run(bg(), []string{"merge"}, os.Stdout); err == nil {
		t.Error("merge without -out accepted")
	}
	dir := t.TempDir()
	if err := run(bg(), []string{"merge", "-out", filepath.Join(dir, "m.csv")}, os.Stdout); err == nil {
		t.Error("merge without inputs accepted")
	}
}
