package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// waitForCampaignState polls `comfase campaigns -id` until the status
// document reports the wanted state.
func waitForCampaignState(t *testing.T, url, id, want string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var out syncBuffer
		if err := run(bg(), []string{"campaigns", "-coordinator", url, "-id", id}, &out); err == nil {
			if strings.Contains(out.String(), `"state": "`+want+`"`) {
				return
			}
			if strings.Contains(out.String(), `"state": "failed"`) {
				t.Fatalf("campaign %s failed: %s", id, out.String())
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached state %q", id, want)
}

// TestRunServeSubmitCampaignsCLI drives the whole multi-campaign control
// plane through the CLI: serve -dir, submit, campaigns (list / status /
// results), a SIGINT-style drain that leaves a queued campaign
// resumable, and a -resume serve that completes it.
func TestRunServeSubmitCampaignsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments in -short mode")
	}
	dir := t.TempDir()
	cfg := writeGridConfig(t, dir)
	svcDir := filepath.Join(dir, "campaigns")

	// Sequential oracle for the byte-identity checks.
	ref := filepath.Join(dir, "ref.csv")
	if err := run(bg(), []string{"campaign", "-config", cfg, "-results", ref}, os.Stdout); err != nil {
		t.Fatalf("sequential campaign: %v", err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	serveCtx, stopServe := context.WithCancel(context.Background())
	defer stopServe()
	serveOut := &syncBuffer{}
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- run(serveCtx, []string{"serve", "-dir", svcDir,
			"-addr", "127.0.0.1:0", "-lease-size", "1", "-lease-ttl", "1s"}, serveOut)
	}()
	url := waitForCoordinatorURL(t, serveOut)

	// Submit the first campaign and let a worker run it to completion.
	var submitOut syncBuffer
	if err := run(bg(), []string{"submit", "-coordinator", url,
		"-config", cfg, "-name", "first"}, &submitOut); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if !strings.Contains(submitOut.String(), "campaign c1 submitted: 4 grid points") {
		t.Fatalf("submit output = %q", submitOut.String())
	}

	workCtx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	workDone := make(chan error, 1)
	go func() {
		workDone <- run(workCtx, []string{"work", "-coordinator", url, "-workers", "2"}, &syncBuffer{})
	}()
	waitForCampaignState(t, url, "c1", "done")

	// The list shows the finished campaign by name.
	var listOut syncBuffer
	if err := run(bg(), []string{"campaigns", "-coordinator", url}, &listOut); err != nil {
		t.Fatalf("campaigns list: %v", err)
	}
	if !strings.Contains(listOut.String(), "c1") || !strings.Contains(listOut.String(), "first") ||
		!strings.Contains(listOut.String(), "done") {
		t.Fatalf("campaigns list = %q", listOut.String())
	}

	// The results endpoint round-trips the merged CSV byte-identically.
	fetched := filepath.Join(dir, "fetched.csv")
	if err := run(bg(), []string{"campaigns", "-coordinator", url,
		"-results", "c1", "-o", fetched}, &syncBuffer{}); err != nil {
		t.Fatalf("campaigns -results: %v", err)
	}
	got, err := os.ReadFile(fetched)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("fetched CSV differs from the sequential run:\nfetched:\n%s\nsequential:\n%s", got, want)
	}

	// Stop the worker, then queue a second campaign nobody will execute.
	stopWorker()
	if err := <-workDone; exitCode(err) != exitInterrupted {
		t.Fatalf("interrupted worker exit = %d (%v), want %d", exitCode(err), err, exitInterrupted)
	}
	if err := run(bg(), []string{"submit", "-coordinator", url,
		"-config", cfg, "-name", "second"}, &syncBuffer{}); err != nil {
		t.Fatalf("submit second: %v", err)
	}

	// Drain: the queued campaign must survive on disk, and serve must say
	// so with a -resume hint and the interrupted exit code.
	stopServe()
	select {
	case err := <-serveErr:
		if exitCode(err) != exitInterrupted {
			t.Fatalf("drained serve exit = %d (%v), want %d\noutput: %q", exitCode(err), err, exitInterrupted, serveOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("serve did not drain: %q", serveOut.String())
	}
	if !strings.Contains(serveOut.String(), "1 campaign(s) incomplete") ||
		!strings.Contains(serveOut.String(), "-resume") {
		t.Errorf("drain message = %q", serveOut.String())
	}
	if _, err := os.Stat(filepath.Join(svcDir, "c2.config.json")); err != nil {
		t.Fatalf("queued campaign's config not durable: %v", err)
	}

	// Resume: the service re-adopts both campaigns, a fresh worker
	// finishes the queued one, and its file is byte-identical too.
	resumeCtx, stopResume := context.WithCancel(context.Background())
	defer stopResume()
	resumeOut := &syncBuffer{}
	resumeErr := make(chan error, 1)
	go func() {
		resumeErr <- run(resumeCtx, []string{"serve", "-dir", svcDir, "-resume",
			"-addr", "127.0.0.1:0", "-lease-size", "1", "-lease-ttl", "1s"}, resumeOut)
	}()
	url2 := waitForCoordinatorURL(t, resumeOut)
	if !strings.Contains(resumeOut.String(), "2 campaign(s) in") {
		t.Errorf("resume banner = %q", resumeOut.String())
	}

	work2Ctx, stopWorker2 := context.WithCancel(context.Background())
	defer stopWorker2()
	worker2Done := make(chan error, 1)
	go func() {
		worker2Done <- run(work2Ctx, []string{"work", "-coordinator", url2, "-workers", "2"}, &syncBuffer{})
	}()
	waitForCampaignState(t, url2, "c2", "done")
	stopWorker2()
	<-worker2Done

	// Exercise cancel on a third, never-executed campaign.
	if err := run(bg(), []string{"submit", "-coordinator", url2,
		"-config", cfg, "-name", "doomed"}, &syncBuffer{}); err != nil {
		t.Fatalf("submit third: %v", err)
	}
	var cancelOut syncBuffer
	if err := run(bg(), []string{"campaigns", "-coordinator", url2, "-cancel", "c3"}, &cancelOut); err != nil {
		t.Fatalf("campaigns -cancel: %v", err)
	}
	if !strings.Contains(cancelOut.String(), "campaign c3 cancelled") {
		t.Errorf("cancel output = %q", cancelOut.String())
	}

	// Every campaign is terminal now, so this drain is a clean exit.
	stopResume()
	select {
	case err := <-resumeErr:
		if err != nil {
			t.Fatalf("resume serve: %v\noutput: %q", err, resumeOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("resume serve did not finish: %q", resumeOut.String())
	}

	got2, err := os.ReadFile(filepath.Join(svcDir, "c2.results.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != string(want) {
		t.Errorf("resumed campaign CSV differs from the sequential run:\nfabric:\n%s\nsequential:\n%s", got2, want)
	}
}

// TestRunSubmitCampaignsErrors covers the operator-CLI validation paths.
func TestRunSubmitCampaignsErrors(t *testing.T) {
	if err := run(bg(), []string{"submit"}, os.Stdout); err == nil {
		t.Error("submit without -coordinator accepted")
	}
	if err := run(bg(), []string{"submit", "-coordinator", "http://127.0.0.1:1"}, os.Stdout); err == nil {
		t.Error("submit without -config accepted")
	}
	if err := run(bg(), []string{"campaigns"}, os.Stdout); err == nil {
		t.Error("campaigns without -coordinator accepted")
	}
	if err := run(bg(), []string{"campaigns", "-coordinator", "http://127.0.0.1:1",
		"-id", "c1", "-cancel", "c2"}, os.Stdout); err == nil {
		t.Error("campaigns with conflicting modes accepted")
	}
	// An unreachable service is an error, not a hang.
	if err := run(bg(), []string{"campaigns", "-coordinator", "http://127.0.0.1:1"}, os.Stdout); err == nil {
		t.Error("campaigns against a dead service accepted")
	}
}
