package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestQuickRunWritesAllArtifacts drives the binary's run() in quick mode
// and checks every output file exists and is well formed.
func TestQuickRunWritesAllArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("quick reproduction takes ~3 s")
	}
	dir := t.TempDir()
	// run() reads package-level flags; set them via the flag API.
	resetFlags(t, map[string]string{
		"out":   dir,
		"quick": "true",
		"seed":  "1",
	})
	if err := run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{
		"fig4_golden.csv", "fig5_duration.csv", "fig6_pd.csv",
		"fig7_start.csv", "report.txt",
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	report, err := os.ReadFile(filepath.Join(dir, "report.txt"))
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	for _, want := range []string{"Golden run", "Delay campaign", "DoS campaign"} {
		if !strings.Contains(string(report), want) {
			t.Errorf("report missing %q", want)
		}
	}
	fig6, err := os.ReadFile(filepath.Join(dir, "fig6_pd.csv"))
	if err != nil {
		t.Fatalf("fig6: %v", err)
	}
	if !strings.HasPrefix(string(fig6), "x,severe,benign,negligible,noneffective") {
		t.Errorf("fig6 header wrong: %.60s", fig6)
	}
}

// resetFlags reinitialises the package flag set for a test invocation.
func resetFlags(t *testing.T, values map[string]string) {
	t.Helper()
	old := flag.CommandLine
	t.Cleanup(func() { flag.CommandLine = old })
	flag.CommandLine = flag.NewFlagSet("comfase-figures-test", flag.ContinueOnError)
	args := []string{}
	for k, v := range values {
		args = append(args, "-"+k+"="+v)
	}
	osArgs := append([]string{"comfase-figures"}, args...)
	oldArgs := os.Args
	t.Cleanup(func() { os.Args = oldArgs })
	os.Args = osArgs
}
