// Command comfase-figures regenerates every table and figure of the
// paper's evaluation section (§IV-C) and writes them to an output
// directory:
//
//	fig4_golden.csv    per-vehicle speed/acceleration profiles (Fig. 4)
//	fig5_duration.csv  classification vs attack duration (Fig. 5)
//	fig6_pd.csv        classification vs propagation delay (Fig. 6)
//	fig7_start.csv     classification vs attack start time (Fig. 7)
//	report.txt         campaign totals, collider shares, DoS banding
//
// The full delay campaign is Table II's 11250 experiments; pass -quick
// for a 150-experiment smoke version.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"comfase/internal/analysis"
	"comfase/internal/figures"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "comfase-figures:", err)
		os.Exit(1)
	}
}

func run() error {
	outDir := flag.String("out", "results", "output directory")
	seed := flag.Uint64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "reduced 150-experiment delay grid")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	opts := figures.Options{
		Seed:  *seed,
		Quick: *quick,
		Progress: func(done, total int) {
			if done%500 == 0 || done == total {
				fmt.Printf("  %d/%d experiments\n", done, total)
			}
		},
	}
	fmt.Printf("running reproduction (quick=%v)...\n", *quick)
	res, err := figures.Run(opts)
	if err != nil {
		return err
	}

	if err := writeFile(*outDir, "fig4_golden.csv", res.GoldenLog.WriteCSV); err != nil {
		return err
	}
	for _, f := range []struct {
		name   string
		series analysis.Series
	}{
		{name: "fig5_duration.csv", series: res.Fig5},
		{name: "fig6_pd.csv", series: res.Fig6},
		{name: "fig7_start.csv", series: res.Fig7},
	} {
		series := f.series
		err := writeFile(*outDir, f.name, func(w io.Writer) error {
			return analysis.SeriesCSV(w, series)
		})
		if err != nil {
			return err
		}
	}
	if err := writeFile(*outDir, "report.txt", res.WriteReport); err != nil {
		return err
	}
	// Raw per-experiment logs (the AttackCampaignLog view).
	err = writeFile(*outDir, "experiments_delay.csv", func(w io.Writer) error {
		return analysis.ExperimentsCSV(w, res.Delay.Experiments)
	})
	if err != nil {
		return err
	}
	err = writeFile(*outDir, "experiments_dos.csv", func(w io.Writer) error {
		return analysis.ExperimentsCSV(w, res.DoS.Experiments)
	})
	if err != nil {
		return err
	}

	fmt.Printf("golden max decel: %.3f m/s^2\n", res.Golden.MaxDecel)
	fmt.Printf("delay campaign:   %s (wall %v)\n", summarize(res, true), res.DelayWall)
	fmt.Printf("dos campaign:     %s (wall %v)\n", summarize(res, false), res.DoSWall)
	fmt.Printf("artifacts written to %s\n", *outDir)
	return nil
}

func summarize(res *figures.Result, delay bool) string {
	if delay {
		return analysis.SummaryLine(res.Delay)
	}
	return analysis.SummaryLine(res.DoS)
}

// writeFile creates dir/name and streams content into it via write.
func writeFile(dir, name string, write func(io.Writer) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", name, err)
	}
	return f.Close()
}
